/**
 * @file
 * Figure 6 reproduction: memory usage over time for a multi-model
 * workload (DepthAnything, ViT, SD-UNet, Whisper — plus GPT-Neo-1.3B
 * under FlashMem) with interleaved iterations. MNN spikes to multiple
 * GB on every model initialization; FlashMem's streamed execution stays
 * near its 1.5 GB configuration.
 *
 * Additionally compares the event-driven scheduler's policies (FIFO,
 * SJF, priority-with-aging, memory-aware admission with on-device
 * re-planning) on the same queue: makespan, mean request latency
 * (end - arrival, queueing delay included) and peak memory per policy.
 * With a JSON-path argument the per-policy numbers are written for
 * BENCH_table4.json's fig6_policies section (tools/run_benchmarks.sh).
 *
 * `--determinism`: instead of the figure, run the memory-aware
 * re-planning scheduler with planner thread counts 1 and 4 on isolated
 * PlanMemos and fail unless the outcomes (timelines, re-plan counts,
 * memory) are identical — the ctest-registered scheduler determinism
 * check.
 *
 * `--trace PATH`: run the five-model queue under the memory-aware
 * re-planning policy with a TraceRecorder attached and export
 * Chrome/Perfetto trace-event JSON (ui.perfetto.dev) — the planner
 * track carries the replan and per-window solver events this bench
 * uniquely exercises.
 */

#include "bench/harness.hh"

#include <cstring>
#include <fstream>
#include <sstream>

#include "multidnn/scheduler.hh"
#include "obs/trace.hh"

namespace {

using namespace flashmem;
using namespace flashmem::bench;

/** Outcome equality at full resolution (timeline + counters). */
bool
outcomesIdentical(const multidnn::ScheduleOutcome &a,
                  const multidnn::ScheduleOutcome &b)
{
    if (a.makespan != b.makespan || a.peakMemory != b.peakMemory ||
        a.replans != b.replans || a.runs.size() != b.runs.size())
        return false;
    for (std::size_t i = 0; i < a.runs.size(); ++i) {
        const auto &x = a.runs[i];
        const auto &y = b.runs[i];
        if (x.model != y.model || x.arrival != y.arrival ||
            x.start != y.start || x.end != y.end ||
            x.peakMemory != y.peakMemory)
            return false;
    }
    return true;
}

/**
 * Scheduler determinism: the same queue under the memory-aware
 * re-planning policy must produce bit-identical outcomes for any
 * planner thread count (isolated memos keep the arms independent).
 */
int
runDeterminismCheck()
{
    auto dev = gpusim::DeviceProfile::onePlus12();
    auto queue = multidnn::interleavedWorkload(
        {ModelId::ResNet50, ModelId::GPTNeoS, ModelId::DepthAnythingS},
        /*iterations=*/2, /*gap=*/milliseconds(10), /*seed=*/17);

    auto run_arm = [&](int threads) {
        core::PlanMemo memo(1024);
        core::FlashMemOptions opt;
        opt.opg.parallel.threads = threads;
        opt.opg.memo = &memo;
        core::FlashMem fm(dev, opt);
        multidnn::SchedulerConfig cfg;
        // Tight shared budget: admission shrinks per-model shares, so
        // every distinct model re-plans at least once.
        cfg.capacityBudget = mib(768);
        multidnn::EventScheduler sched(fm, cfg);
        return sched.run(queue, multidnn::MemoryAwarePolicy{});
    };

    auto t1 = run_arm(1);
    auto t4 = run_arm(4);
    bool identical = outcomesIdentical(t1, t4);
    bool replanned = t1.replans > 0;
    std::cout << "scheduler determinism (threads 1 vs 4): "
              << (identical ? "identical" : "DIVERGED") << ", "
              << t1.replans << " re-plans ("
              << t1.replanMemoHits << " memo hits, "
              << formatDouble(t1.replanSeconds, 3) << " s)\n";
    std::cout << "re-planning exercised: "
              << (replanned ? "yes" : "NO") << "\n";
    return identical && replanned ? 0 : 1;
}

/** `--trace PATH`: the five-model memory-aware run, traced and
 * exported for ui.perfetto.dev (planner + device + request tracks). */
int
runTraceExport(const char *path)
{
    auto dev = gpusim::DeviceProfile::onePlus12();
    core::FlashMemOptions opt;
    opt.opg.mPeak = mib(1024);
    opt.opg.lambda = 0.5;
    core::FlashMem fm(dev, opt);

    obs::TraceRecorder rec;
    multidnn::SchedulerConfig cfg;
    cfg.capacityBudget = gib(1.5);
    cfg.trace = &rec;
    multidnn::EventScheduler sched(fm, cfg);
    auto queue = multidnn::interleavedWorkload(
        {ModelId::DepthAnythingS, ModelId::ViT, ModelId::SDUNet,
         ModelId::WhisperMedium, ModelId::GPTNeo1_3B},
        /*iterations=*/3, /*gap=*/0, /*seed=*/99);
    auto out = sched.run(queue, multidnn::MemoryAwarePolicy{});

    std::ofstream os(path);
    rec.writeChromeJson(os);
    bool ok = os.good();
    std::size_t solver_windows = 0;
    for (const auto &e : rec.events())
        solver_windows += e.kind == obs::EventKind::SolverWindow;
    std::cout << "perfetto trace: " << queue.size()
              << " requests, " << out.replans << " re-plans, "
              << solver_windows << " solver windows, " << rec.size()
              << " events -> " << path << "\n";
    // The export must carry the planner-side events this bench is
    // the canonical producer of.
    ok &= out.replans > 0 && solver_windows > 0;
    if (!ok)
        std::cerr << "trace export failed shape check or write\n";
    return ok ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace flashmem;
    using namespace flashmem::bench;

    if (argc > 1 && std::strcmp(argv[1], "--determinism") == 0)
        return runDeterminismCheck();
    if (argc > 2 && std::strcmp(argv[1], "--trace") == 0)
        return runTraceExport(argv[2]);

    printHeading(std::cout,
                 "Figure 6: multi-model FIFO memory behaviour");

    auto dev = gpusim::DeviceProfile::onePlus12();

    // FlashMem runs the full five-model mix (paper Figure 6a).
    auto flash_queue = multidnn::interleavedWorkload(
        {ModelId::DepthAnythingS, ModelId::ViT, ModelId::SDUNet,
         ModelId::WhisperMedium, ModelId::GPTNeo1_3B},
        /*iterations=*/3, /*gap=*/0, /*seed=*/99);
    // MNN cannot hold GPT-Neo-1.3B at all (paper Figure 6b drops it).
    auto mnn_queue = multidnn::interleavedWorkload(
        {ModelId::DepthAnythingS, ModelId::ViT, ModelId::SDUNet,
         ModelId::WhisperMedium},
        /*iterations=*/3, /*gap=*/0, /*seed=*/99);
    // Interactive models outrank the batch-y generators under the
    // priority policy; aging keeps the low-priority ones moving.
    multidnn::assignPriorities(flash_queue,
                               {{ModelId::DepthAnythingS, 3},
                                {ModelId::ViT, 2},
                                {ModelId::WhisperMedium, 1},
                                {ModelId::SDUNet, 0},
                                {ModelId::GPTNeo1_3B, 0}});

    // Latency-priority configuration: paper uses a manually selected
    // 1.5 GB constraint for this study.
    core::FlashMemOptions opt;
    opt.opg.mPeak = mib(1024);
    opt.opg.lambda = 0.5;
    core::FlashMem fm(dev, opt);

    multidnn::SchedulerConfig cfg;
    // Shared capacity for memory-aware admission: five co-resident
    // models must fit where the paper's study allowed ~1.5 GB.
    cfg.capacityBudget = gib(1.5);
    multidnn::EventScheduler sched(fm, cfg);

    auto flash = sched.run(flash_queue, multidnn::FifoPolicy{});
    auto mnn = multidnn::EventScheduler::runPreload(
        FrameworkId::MNN, dev, mnn_queue, multidnn::FifoPolicy{});

    std::cout << "FlashMem (5 models x 3 iterations):\n";
    metrics::renderAsciiChart(
        std::cout,
        {{"FlashMem total memory", '#',
          metrics::sampleTrace(flash.trace, 76)}},
        76, 10);
    std::cout << "\nMNN (4 models x 3 iterations — GPTN-1.3B "
                 "unsupported):\n";
    metrics::renderAsciiChart(
        std::cout,
        {{"MNN total memory", '.', metrics::sampleTrace(mnn.trace,
                                                        76)}},
        76, 10);

    Table t({"Strategy", "Models", "Makespan", "Mean latency",
             "Peak mem", "Avg mem"});
    t.addRow({"FlashMem", "5 (incl. GPTN-1.3B)",
              formatMs(flash.makespan), formatMs(flash.meanLatency()),
              formatBytes(flash.peakMemory),
              formatBytes(static_cast<Bytes>(flash.avgMemoryBytes))});
    t.addRow({"MNN", "4", formatMs(mnn.makespan),
              formatMs(mnn.meanLatency()), formatBytes(mnn.peakMemory),
              formatBytes(static_cast<Bytes>(mnn.avgMemoryBytes))});
    t.print(std::cout);

    // ------------------------------------------------------------------
    // Per-policy comparison on the FlashMem queue. The scheduler reuses
    // compiled artifacts across policies, so only the first run pays
    // the offline stage; memory-aware admission re-plans on top.
    // ------------------------------------------------------------------
    printHeading(std::cout,
                 "Event-driven scheduler: policy comparison");
    std::ostringstream json;
    json << "{\n  \"fig6_policies\": [\n";
    Table pt({"Policy", "Makespan", "Mean latency", "Mean queue",
              "Peak mem", "Re-plans"});
    const auto &kinds = multidnn::allPolicyKinds();
    std::vector<multidnn::ScheduleOutcome> outcomes;
    for (std::size_t i = 0; i < kinds.size(); ++i) {
        auto policy = multidnn::makePolicy(kinds[i]);
        auto o = sched.run(flash_queue, *policy);
        pt.addRow({o.policy, formatMs(o.makespan),
                   formatMs(o.meanLatency()),
                   formatMs(o.meanQueueDelay()),
                   formatBytes(o.peakMemory),
                   std::to_string(o.replans)});
        json << "    {\"policy\": \"" << o.policy
             << "\", \"makespan_ms\": " << toMilliseconds(o.makespan)
             << ", \"mean_latency_ms\": "
             << toMilliseconds(o.meanLatency())
             << ", \"mean_queue_ms\": "
             << toMilliseconds(o.meanQueueDelay())
             << ", \"peak_mem_mb\": " << toMiB(o.peakMemory)
             << ", \"replans\": " << o.replans << "}"
             << (i + 1 < kinds.size() ? "," : "") << "\n";
        outcomes.push_back(std::move(o));
    }
    pt.print(std::cout);
    json << "  ]\n}\n";

    bool ok = true;
    // FlashMem stays under the configured ceiling (paper: 1.5 GB);
    // MNN spikes into multi-GB territory on a smaller model set.
    ok &= flash.peakMemory < gib(1.5);
    ok &= mnn.peakMemory > gib(2.5);
    ok &= flash.makespan < mnn.makespan;
    // The FIFO policy is the first outcome; the event-driven drain
    // must reproduce the figure run exactly.
    ok &= outcomes[0].makespan == flash.makespan;
    // Mean latency includes queueing: it can never undercut the mean
    // device-side latency.
    for (const auto &o : outcomes)
        ok &= o.meanLatency() >= o.makespan / static_cast<SimTime>(
                                     3 * o.runs.size());
    // Memory-aware admission re-planned under the shared budget and
    // did not raise the peak over plain FIFO (same dispatch order).
    const auto &maware = outcomes.back();
    ok &= maware.replans > 0;
    ok &= maware.peakMemory <= outcomes[0].peakMemory;
    std::cout << "\nShape check (FlashMem < 1.5 GB, MNN multi-GB "
                 "spikes, memory-aware re-plans and holds the lowest "
                 "peak): "
              << (ok ? "PASS" : "FAIL") << "\n";

    if (argc > 1) {
        std::ofstream out(argv[1]);
        out << json.str();
        if (out.good()) {
            std::cout << "wrote " << argv[1] << "\n";
        } else {
            std::cerr << "failed to write " << argv[1] << "\n";
            ok = false;
        }
    }
    return ok ? 0 : 1;
}
