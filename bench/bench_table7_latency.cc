/**
 * @file
 * Table 7 reproduction: end-to-end latency of 11 models across MNN,
 * NCNN, TVM, LiteRT, ExecuTorch, SmartMem (Init + Exec) and FlashMem
 * (integrated), on the OnePlus 12 profile. Prints measured next to the
 * published numbers and checks the headline properties: FlashMem wins
 * everywhere it matters, GPTN-2.7B runs only under FlashMem, and the
 * geo-mean speedups land in the published ordering.
 */

#include "bench/harness.hh"

int
main()
{
    using namespace flashmem;
    using namespace flashmem::bench;

    printHeading(std::cout, "Table 7: end-to-end latency, OnePlus 12 "
                            "(measured | paper)");

    auto dev = gpusim::DeviceProfile::onePlus12();
    core::FlashMem fm(dev);

    std::vector<std::string> headers = {"Model"};
    for (auto fw : baselines::allFrameworks()) {
        headers.push_back(std::string(baselines::frameworkName(fw)) +
                          " Init");
        headers.push_back("Exec");
    }
    headers.push_back("Ours");
    headers.push_back("Ours(paper)");
    Table t(headers);

    std::map<FrameworkId, metrics::RatioSummary> speedups;
    metrics::RatioSummary all_speedups;
    bool ok = true;
    int flash_wins = 0, comparisons = 0;

    for (const auto &spec : models::modelZoo()) {
        const auto &g = cachedModel(spec.id);
        gpusim::GpuSimulator flash_sim(dev);
        auto flash = fm.execute(flash_sim, cachedCompiled(fm, spec.id));
        ok &= !flash.oom;

        std::vector<std::string> cells = {spec.abbr};
        for (auto fw : baselines::allFrameworks()) {
            auto r = runBaseline(fw, g, dev);
            bool usable = r.has_value() && !r->oom;
            auto paper = paperTable7(fw, spec.id);
            cells.push_back(cellMs(r, true) +
                            (paper.supported()
                                 ? " | " + formatDouble(paper.init, 0)
                                 : ""));
            cells.push_back(cellMs(r, false) +
                            (paper.supported()
                                 ? " | " + formatDouble(paper.exec, 0)
                                 : ""));
            // Support pattern must match the published "-" cells
            // (OOM counts as unsupported, e.g. GPTN-2.7B everywhere).
            ok &= usable == paper.supported();
            if (usable) {
                double ratio =
                    static_cast<double>(r->integratedLatency()) /
                    static_cast<double>(flash.integratedLatency());
                speedups[fw].add(ratio);
                all_speedups.add(ratio);
                ++comparisons;
                flash_wins += ratio > 1.0;
            }
        }
        cells.push_back(formatMs(flash.integratedLatency()));
        cells.push_back(formatDouble(paperTable7Flash(spec.id), 0));
        t.addRow(cells);
    }
    t.print(std::cout);

    // Published geo-mean speedups over FlashMem per framework.
    const std::map<FrameworkId, double> paper_geomean = {
        {FrameworkId::MNN, 6.1},        {FrameworkId::NCNN, 2.9},
        {FrameworkId::TVM, 6.2},        {FrameworkId::LiteRT, 1.7},
        {FrameworkId::ExecuTorch, 75.0}, {FrameworkId::SmartMem, 8.6},
    };
    Table s({"Framework", "geo-mean speedup", "(paper)", "min", "max"});
    for (auto fw : baselines::allFrameworks()) {
        s.addRow({baselines::frameworkName(fw),
                  formatRatio(speedups[fw].geomean()),
                  formatRatio(paper_geomean.at(fw)),
                  formatRatio(speedups[fw].min()),
                  formatRatio(speedups[fw].max())});
    }
    s.print(std::cout);

    // Headline checks.
    ok &= flash_wins == comparisons; // FlashMem fastest everywhere
    ok &= speedups[FrameworkId::ExecuTorch].geomean() >
          speedups[FrameworkId::SmartMem].geomean();
    ok &= all_speedups.geomean() > 1.7;
    std::cout << "\nFlashMem wins " << flash_wins << "/" << comparisons
              << " supported comparisons; overall geo-mean "
              << formatRatio(all_speedups.geomean()) << "\n";
    std::cout << "Shape check: " << (ok ? "PASS" : "FAIL") << "\n";
    return ok ? 0 : 1;
}
