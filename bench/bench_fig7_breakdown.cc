/**
 * @file
 * Figure 7 reproduction: ablation of FlashMem's optimizations for ViT,
 * SD-UNet, and GPT-Neo-1.3B against the SmartMem baseline — the
 * incremental speedup and memory reduction of the OPG solver, adaptive
 * fusion, and kernel rewriting.
 */

#include "bench/harness.hh"

#include "common/logging.hh"

int
main()
{
    using namespace flashmem;
    using namespace flashmem::bench;

    printHeading(std::cout, "Figure 7: optimization breakdown over "
                            "SmartMem (speedup / memory reduction)");

    auto dev = gpusim::DeviceProfile::onePlus12();
    const ModelId targets[] = {ModelId::ViT, ModelId::SDUNet,
                               ModelId::GPTNeo1_3B};

    // Ablation ladder.
    core::FlashMemOptions opg_only;
    opg_only.adaptiveFusion = false;
    opg_only.kernelRewriting = false;
    core::FlashMemOptions with_fusion = opg_only;
    with_fusion.adaptiveFusion = true;
    core::FlashMemOptions full;

    struct Step
    {
        const char *name;
        core::FlashMemOptions opt;
    };
    const Step steps[] = {{"+OPG-Solver", opg_only},
                          {"+Adaptive Fusion", with_fusion},
                          {"+Kernel Rewriting", full}};

    Table t({"Model", "Step", "Integrated", "Speedup vs SMem",
             "Avg mem", "Reduction vs SMem"});
    bool ok = true;
    for (auto id : targets) {
        const auto &g = cachedModel(id);
        auto smem = runBaseline(FrameworkId::SmartMem, g, dev);
        FM_ASSERT(smem.has_value(), "SmartMem must support fig-7 set");
        double smem_lat =
            static_cast<double>(smem->integratedLatency());
        double smem_mem = smem->avgMemoryBytes;

        double prev_speedup = 0.0;
        for (const auto &step : steps) {
            // Equal footing: no warm starts leaking between ablation
            // arms (budget-truncated plans are history-dependent).
            core::PlanMemo::global().clear();
            core::FlashMem fm(dev, step.opt);
            auto r = runFlash(fm, g);
            double speedup =
                smem_lat / static_cast<double>(r.integratedLatency());
            double reduction = smem_mem / r.avgMemoryBytes;
            t.addRow({models::modelSpec(id).abbr, step.name,
                      formatMs(r.integratedLatency()),
                      formatRatio(speedup),
                      formatBytes(
                          static_cast<Bytes>(r.avgMemoryBytes)),
                      formatRatio(reduction)});
            // Paper shape: OPG alone already delivers multi-x gains;
            // later steps never regress materially.
            if (step.name == std::string("+OPG-Solver"))
                ok &= speedup > 3.0;
            else
                ok &= speedup > 0.95 * prev_speedup;
            prev_speedup = speedup;
            ok &= reduction > 1.5;
        }
        t.addRule();
    }
    t.print(std::cout);

    std::cout << "\nPaper reference: OPG-Solver 5.3-8.1x, +Fusion up to "
                 "5.1x extra, +Rewriting up to 2.55x extra; memory "
                 "2.1-3.8x from OPG.\n";
    std::cout << "Shape check: " << (ok ? "PASS" : "FAIL") << "\n";
    return ok ? 0 : 1;
}
