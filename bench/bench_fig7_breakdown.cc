/**
 * @file
 * Figure 7 reproduction: ablation of FlashMem's optimizations for ViT,
 * SD-UNet, and GPT-Neo-1.3B against the SmartMem baseline — the
 * incremental speedup and memory reduction of the OPG solver, adaptive
 * fusion, and kernel rewriting.
 *
 * Second section (also run standalone via --phases-only, the mode
 * registered with ctest): the LC-OPG per-phase breakdown — process /
 * stage / build / solve / merge — over the Table-4 model set, planned
 * with threads = 1, 4, and hardware_concurrency. Checks that the three
 * plans are byte-identical per model (the parallel pipeline's
 * determinism contract) and that every phase is accounted for.
 */

#include "bench/harness.hh"

#include <cstring>

#include "common/logging.hh"
#include "common/thread_pool.hh"
#include "profiler/capacity.hh"

namespace {

/** Per-phase breakdown + cross-thread-count determinism check. */
bool
runPhaseBreakdown()
{
    using namespace flashmem;
    using namespace flashmem::bench;

    printHeading(std::cout,
                 "Figure 7b: LC-OPG phase breakdown (serial vs "
                 "parallel), Table-4 model set");

    gpusim::KernelModel km(gpusim::DeviceProfile::onePlus12());
    profiler::AnalyticCapacityProvider cap(km);

    const int hw = ThreadPool::defaultThreadCount();
    std::vector<int> arms = {1, 4};
    if (hw != 1 && hw != 4)
        arms.push_back(hw);

    Table t({"Model", "Thr", "Process (s)", "Stage (s)", "Build (s)",
             "Solve wall (s)", "Solve cpu (s)", "Merge (s)",
             "Identical"});
    bool ok = true;
    for (const auto &m : table4ModelSet()) {
        std::string ref_plan;
        for (int threads : arms) {
            // Equal footing per arm: no warm starts leaking between
            // thread counts (hints could legally improve truncated
            // windows and break the byte-identical comparison).
            core::PlanMemo::global().clear();
            core::OpgParams params;
            params.solverDecisionsPerWindow = 20000;
            params.restartConflictBase = 1024;
            params.parallel.threads = threads;
            core::LcOpgPlanner planner(*m.graph, cap, km, params);
            core::PlanStats stats;
            auto plan = planner.plan(&stats);
            ok &= plan.validate(*m.graph, false);

            auto s = plan.serialize();
            bool same = ref_plan.empty() || s == ref_plan;
            if (ref_plan.empty())
                ref_plan = std::move(s);
            ok &= same;

            t.addRow({m.name, std::to_string(threads),
                      formatDouble(stats.processNodesSeconds, 4),
                      formatDouble(stats.stageSeconds, 4),
                      formatDouble(stats.buildModelSeconds, 4),
                      formatDouble(stats.solveSeconds, 3),
                      formatDouble(stats.solveCpuSeconds, 3),
                      formatDouble(stats.mergeSeconds, 4),
                      same ? "yes" : "NO"});
        }
        t.addRule();
    }
    t.print(std::cout);
    core::PlanMemo::global().clear();
    std::cout << "\nDeterminism (plans byte-identical across threads="
              << "1/4/" << hw << "): " << (ok ? "PASS" : "FAIL")
              << "\n";
    return ok;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace flashmem;
    using namespace flashmem::bench;

    // ctest runs only the fast deterministic phase-breakdown section.
    if (argc > 1 && std::strcmp(argv[1], "--phases-only") == 0)
        return runPhaseBreakdown() ? 0 : 1;

    printHeading(std::cout, "Figure 7: optimization breakdown over "
                            "SmartMem (speedup / memory reduction)");

    auto dev = gpusim::DeviceProfile::onePlus12();
    const ModelId targets[] = {ModelId::ViT, ModelId::SDUNet,
                               ModelId::GPTNeo1_3B};

    // Ablation ladder.
    core::FlashMemOptions opg_only;
    opg_only.adaptiveFusion = false;
    opg_only.kernelRewriting = false;
    core::FlashMemOptions with_fusion = opg_only;
    with_fusion.adaptiveFusion = true;
    core::FlashMemOptions full;

    struct Step
    {
        const char *name;
        core::FlashMemOptions opt;
    };
    const Step steps[] = {{"+OPG-Solver", opg_only},
                          {"+Adaptive Fusion", with_fusion},
                          {"+Kernel Rewriting", full}};

    Table t({"Model", "Step", "Integrated", "Speedup vs SMem",
             "Avg mem", "Reduction vs SMem"});
    bool ok = true;
    for (auto id : targets) {
        const auto &g = cachedModel(id);
        auto smem = runBaseline(FrameworkId::SmartMem, g, dev);
        FM_ASSERT(smem.has_value(), "SmartMem must support fig-7 set");
        double smem_lat =
            static_cast<double>(smem->integratedLatency());
        double smem_mem = smem->avgMemoryBytes;

        double prev_speedup = 0.0;
        for (const auto &step : steps) {
            // Equal footing: no warm starts leaking between ablation
            // arms (budget-truncated plans are history-dependent).
            core::PlanMemo::global().clear();
            core::FlashMem fm(dev, step.opt);
            auto r = runFlash(fm, g);
            double speedup =
                smem_lat / static_cast<double>(r.integratedLatency());
            double reduction = smem_mem / r.avgMemoryBytes;
            t.addRow({models::modelSpec(id).abbr, step.name,
                      formatMs(r.integratedLatency()),
                      formatRatio(speedup),
                      formatBytes(
                          static_cast<Bytes>(r.avgMemoryBytes)),
                      formatRatio(reduction)});
            // Paper shape: OPG alone already delivers multi-x gains;
            // later steps never regress materially.
            if (step.name == std::string("+OPG-Solver"))
                ok &= speedup > 3.0;
            else
                ok &= speedup > 0.95 * prev_speedup;
            prev_speedup = speedup;
            ok &= reduction > 1.5;
        }
        t.addRule();
    }
    t.print(std::cout);

    std::cout << "\nPaper reference: OPG-Solver 5.3-8.1x, +Fusion up to "
                 "5.1x extra, +Rewriting up to 2.55x extra; memory "
                 "2.1-3.8x from OPG.\n";
    std::cout << "Shape check: " << (ok ? "PASS" : "FAIL") << "\n";

    ok &= runPhaseBreakdown();
    return ok ? 0 : 1;
}
