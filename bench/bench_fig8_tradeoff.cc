/**
 * @file
 * Figure 8 reproduction: the memory/latency trade-off as the preload
 * ratio changes (driven by M_peak and lambda) for ViT, GPT-Neo-1.3B,
 * DepthAnything-L, and Whisper-M. Expected shape: execution latency
 * falls as more weight is preloaded, while integrated latency rises
 * once initialization dominates; partial overlap achieves near-minimal
 * execution latency at a fraction of the memory.
 */

#include "bench/harness.hh"

int
main()
{
    using namespace flashmem;
    using namespace flashmem::bench;

    printHeading(std::cout,
                 "Figure 8: memory vs latency trade-off sweep");

    auto dev = gpusim::DeviceProfile::onePlus12();
    const ModelId targets[] = {ModelId::ViT, ModelId::GPTNeo1_3B,
                               ModelId::DepthAnythingL,
                               ModelId::WhisperMedium};

    struct Config
    {
        Bytes mpeak;
        double lambda;
        double preload_fraction; ///< explicit preload list coverage
    };
    // Memory-priority -> latency-priority ladder: the paper varies
    // M_peak, lambda, mu and the explicit preload list |W|.
    const Config configs[] = {{mib(256), 0.95, 0.0},
                              {mib(500), 0.9, 0.25},
                              {mib(1024), 0.8, 0.5},
                              {mib(2048), 0.5, 0.75},
                              {mib(4096), 0.2, 0.98}};

    Table t({"Model", "M_peak", "lambda", "Preload%", "Overlap%",
             "Avg mem (MB)", "Integrated (ms)", "Exec (ms)"});
    bool ok = true;
    double overlap_sum = 0.0;
    int overlap_n = 0;
    for (auto id : targets) {
        const auto &g = cachedModel(id);
        double first_exec = 0, last_exec = 0;
        double first_mem = 0, last_mem = 0;
        for (const auto &cfg : configs) {
            core::FlashMemOptions opt;
            opt.opg.mPeak = cfg.mpeak;
            opt.opg.lambda = cfg.lambda;
            opt.opg.minPreloadFraction = cfg.preload_fraction;
            core::FlashMem fm(dev, opt);
            auto compiled = fm.compile(g);
            gpusim::GpuSimulator sim(dev);
            auto r = fm.execute(sim, compiled);
            double overlap = compiled.overlapFraction();
            t.addRow({models::modelSpec(id).abbr,
                      formatBytes(cfg.mpeak),
                      formatDouble(cfg.lambda, 2),
                      formatDouble(100 * cfg.preload_fraction, 0),
                      formatDouble(100 * overlap, 1),
                      formatDouble(r.avgMemoryBytes / (1024 * 1024),
                                   0),
                      formatMs(r.integratedLatency()),
                      formatMs(r.execLatency())});
            if (&cfg == &configs[0]) {
                first_exec = static_cast<double>(r.execLatency());
                first_mem = r.avgMemoryBytes;
            }
            last_exec = static_cast<double>(r.execLatency());
            last_mem = r.avgMemoryBytes;
            overlap_sum += overlap;
            ++overlap_n;
        }
        t.addRule();
        // Shape: preloading more (right end) lowers execution latency
        // and raises memory.
        ok &= last_exec < first_exec;
        ok &= last_mem > first_mem;
    }
    t.print(std::cout);

    double mean_overlap = overlap_sum / overlap_n;
    std::cout << "\nMean overlap fraction across the sweep: "
              << formatDouble(100 * mean_overlap, 1)
              << "% (paper: averaging 49.3% of weights overlapped "
                 "costs negligible latency)\n";
    ok &= mean_overlap > 0.25 && mean_overlap < 0.95;
    std::cout << "Shape check (exec falls, memory rises with preload): "
              << (ok ? "PASS" : "FAIL") << "\n";
    return ok ? 0 : 1;
}
