#include "bench/harness.hh"

#include "common/logging.hh"

namespace flashmem::bench {

namespace {

/** Paper Table 7, (init, exec) ms per framework column. */
const std::map<ModelId, std::map<FrameworkId, PaperLatency>> kTable7 = {
    {ModelId::GPTNeoS,
     {{FrameworkId::MNN, {3529, 337}},
      {FrameworkId::TVM, {5832, 621}},
      {FrameworkId::ExecuTorch, {277, 5869}},
      {FrameworkId::SmartMem, {4757, 59}}}},
    {ModelId::GPTNeo1_3B,
     {{FrameworkId::ExecuTorch, {5178, 515291}},
      {FrameworkId::SmartMem, {48109, 501}}}},
    {ModelId::GPTNeo2_7B, {}},
    {ModelId::ResNet50,
     {{FrameworkId::MNN, {1751, 22}},
      {FrameworkId::NCNN, {1341, 28}},
      {FrameworkId::TVM, {524, 56}},
      {FrameworkId::LiteRT, {573, 34}},
      {FrameworkId::ExecuTorch, {65, 10302}},
      {FrameworkId::SmartMem, {1470, 33}}}},
    {ModelId::SAM2,
     {{FrameworkId::ExecuTorch, {1178, 857752}},
      {FrameworkId::SmartMem, {9983, 826}}}},
    {ModelId::ViT,
     {{FrameworkId::MNN, {2550, 476}},
      {FrameworkId::TVM, {3527, 841}},
      {FrameworkId::LiteRT, {711, 91}},
      {FrameworkId::ExecuTorch, {90, 6671}},
      {FrameworkId::SmartMem, {3675, 73}}}},
    {ModelId::DeepViT,
     {{FrameworkId::MNN, {4345, 883}},
      {FrameworkId::TVM, {6243, 1665}},
      {FrameworkId::LiteRT, {1013, 254}},
      {FrameworkId::ExecuTorch, {298, 60656}},
      {FrameworkId::SmartMem, {7699, 190}}}},
    {ModelId::SDUNet,
     {{FrameworkId::MNN, {21747, 1647}},
      {FrameworkId::ExecuTorch, {7692, 1056869}},
      {FrameworkId::SmartMem, {29588, 312}}}},
    {ModelId::WhisperMedium,
     {{FrameworkId::MNN, {6143, 1343}},
      {FrameworkId::TVM, {7256, 2157}},
      {FrameworkId::SmartMem, {15066, 336}}}},
    {ModelId::DepthAnythingS,
     {{FrameworkId::MNN, {2492, 588}},
      {FrameworkId::TVM, {2012, 487}},
      {FrameworkId::SmartMem, {2200, 71}}}},
    {ModelId::DepthAnythingL,
     {{FrameworkId::MNN, {6267, 1784}},
      {FrameworkId::TVM, {6988, 1917}},
      {FrameworkId::SmartMem, {18567, 807}}}},
};

const std::map<ModelId, double> kTable7Flash = {
    {ModelId::GPTNeoS, 577},        {ModelId::GPTNeo1_3B, 3086},
    {ModelId::GPTNeo2_7B, 7567},    {ModelId::ResNet50, 473},
    {ModelId::SAM2, 1267},          {ModelId::ViT, 347},
    {ModelId::DeepViT, 785},        {ModelId::SDUNet, 3212},
    {ModelId::WhisperMedium, 1565}, {ModelId::DepthAnythingS, 496},
    {ModelId::DepthAnythingL, 1382},
};

/** Paper Table 8, average memory (MB). */
const std::map<ModelId, std::map<FrameworkId, double>> kTable8 = {
    {ModelId::GPTNeoS,
     {{FrameworkId::MNN, 610},
      {FrameworkId::TVM, 2300},
      {FrameworkId::ExecuTorch, 702},
      {FrameworkId::SmartMem, 541}}},
    {ModelId::GPTNeo1_3B,
     {{FrameworkId::ExecuTorch, 2600}, {FrameworkId::SmartMem, 2667}}},
    {ModelId::GPTNeo2_7B, {}},
    {ModelId::ResNet50,
     {{FrameworkId::MNN, 149},
      {FrameworkId::NCNN, 165},
      {FrameworkId::TVM, 789},
      {FrameworkId::LiteRT, 331},
      {FrameworkId::ExecuTorch, 129},
      {FrameworkId::SmartMem, 140}}},
    {ModelId::SAM2, {{FrameworkId::SmartMem, 896}}},
    {ModelId::ViT,
     {{FrameworkId::MNN, 369},
      {FrameworkId::TVM, 801},
      {FrameworkId::LiteRT, 711},
      {FrameworkId::ExecuTorch, 375},
      {FrameworkId::SmartMem, 390}}},
    {ModelId::DeepViT,
     {{FrameworkId::MNN, 824},
      {FrameworkId::TVM, 3072},
      {FrameworkId::LiteRT, 2355},
      {FrameworkId::ExecuTorch, 1228},
      {FrameworkId::SmartMem, 826}}},
    {ModelId::SDUNet,
     {{FrameworkId::MNN, 1800},
      {FrameworkId::ExecuTorch, 1792},
      {FrameworkId::SmartMem, 2100}}},
    {ModelId::WhisperMedium,
     {{FrameworkId::MNN, 1650},
      {FrameworkId::TVM, 1638},
      {FrameworkId::SmartMem, 1433}}},
    {ModelId::DepthAnythingS,
     {{FrameworkId::MNN, 148},
      {FrameworkId::TVM, 461},
      {FrameworkId::SmartMem, 150}}},
    {ModelId::DepthAnythingL,
     {{FrameworkId::MNN, 1230},
      {FrameworkId::TVM, 1260},
      {FrameworkId::SmartMem, 1200}}},
};

const std::map<ModelId, double> kTable8Flash = {
    {ModelId::GPTNeoS, 260},       {ModelId::GPTNeo1_3B, 554},
    {ModelId::GPTNeo2_7B, 1132},   {ModelId::ResNet50, 83},
    {ModelId::SAM2, 150},          {ModelId::ViT, 83},
    {ModelId::DeepViT, 165},       {ModelId::SDUNet, 838},
    {ModelId::WhisperMedium, 240}, {ModelId::DepthAnythingS, 86},
    {ModelId::DepthAnythingL, 246},
};

} // namespace

PaperLatency
paperTable7(FrameworkId fw, ModelId m)
{
    const auto &row = kTable7.at(m);
    auto it = row.find(fw);
    return it == row.end() ? PaperLatency{} : it->second;
}

double
paperTable7Flash(ModelId m)
{
    return kTable7Flash.at(m);
}

double
paperTable8(FrameworkId fw, ModelId m)
{
    const auto &row = kTable8.at(m);
    auto it = row.find(fw);
    return it == row.end() ? -1 : it->second;
}

double
paperTable8Flash(ModelId m)
{
    return kTable8Flash.at(m);
}

std::optional<core::RunResult>
runBaseline(FrameworkId fw, const graph::Graph &g,
            const gpusim::DeviceProfile &dev)
{
    baselines::PreloadFramework framework(fw, dev);
    if (framework.supports(g) != baselines::SupportStatus::Supported)
        return std::nullopt;
    gpusim::GpuSimulator sim(dev);
    return framework.run(sim, g);
}

core::RunResult
runFlash(const core::FlashMem &fm, const graph::Graph &g)
{
    auto compiled = fm.compile(g);
    gpusim::GpuSimulator sim(fm.device());
    return fm.execute(sim, compiled);
}

std::string
cellMs(const std::optional<core::RunResult> &r, bool init)
{
    if (!r)
        return "-";
    if (r->oom)
        return "OOM";
    return formatMs(init ? r->initLatency() : r->execLatency());
}

const graph::Graph &
cachedModel(ModelId id)
{
    static std::map<ModelId, graph::Graph> cache;
    auto it = cache.find(id);
    if (it == cache.end())
        it = cache.emplace(id, models::buildModel(id)).first;
    return it->second;
}

const std::vector<Table4Model> &
table4ModelSet()
{
    static const std::vector<std::pair<std::string, graph::Graph>>
        cache = [] {
            models::SyntheticTransformerCfg vit8b;
            vit8b.name = "vit_8b";
            vit8b.blocks = 40;
            vit8b.dModel = 4096;
            vit8b.heads = 32;
            vit8b.vocab = 1000;

            models::SyntheticTransformerCfg llama13;
            llama13.name = "llama2_13b";
            llama13.blocks = 40;
            llama13.dModel = 5120;
            llama13.heads = 40;
            llama13.ffnHidden = 13824;
            llama13.llamaStyle = true;

            models::SyntheticTransformerCfg llama70;
            llama70.name = "llama2_70b";
            llama70.blocks = 80;
            llama70.dModel = 8192;
            llama70.heads = 64;
            llama70.ffnHidden = 28672;
            llama70.kvDim = 1024;
            llama70.llamaStyle = true;

            std::vector<std::pair<std::string, graph::Graph>> out;
            out.emplace_back("GPTN-S",
                             models::buildModel(ModelId::GPTNeoS));
            out.emplace_back("GPTN-1.3B",
                             models::buildModel(ModelId::GPTNeo1_3B));
            out.emplace_back("GPTN-2.7B",
                             models::buildModel(ModelId::GPTNeo2_7B));
            out.emplace_back("ViT-8B",
                             buildSyntheticTransformer(vit8b,
                                                       Precision::FP16));
            out.emplace_back(
                "Llama2-13B",
                buildSyntheticTransformer(llama13, Precision::FP16));
            out.emplace_back(
                "Llama2-70B",
                buildSyntheticTransformer(llama70, Precision::FP16));
            return out;
        }();
    static const std::vector<Table4Model> view = [] {
        std::vector<Table4Model> out;
        for (const auto &[name, g] : cache)
            out.push_back({name, &g});
        return out;
    }();
    return view;
}

const core::CompiledModel &
cachedCompiled(const core::FlashMem &fm, ModelId id)
{
    static std::map<std::string, core::CompiledModel> cache;
    std::string key = fm.device().name + "/" +
                      models::modelSpec(id).abbr;
    auto it = cache.find(key);
    if (it == cache.end())
        it = cache.emplace(key, fm.compile(cachedModel(id))).first;
    return it->second;
}

} // namespace flashmem::bench
