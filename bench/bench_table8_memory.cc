/**
 * @file
 * Table 8 reproduction: average memory consumption across frameworks
 * and the Mem-ReDT reduction over SmartMem. Checks: FlashMem uses the
 * least memory on every supported model, larger transformers see the
 * biggest reductions, and conv-heavy models (ResNet, DepthA-S) the
 * smallest (paper Section 5.2).
 */

#include "bench/harness.hh"

int
main()
{
    using namespace flashmem;
    using namespace flashmem::bench;

    printHeading(std::cout, "Table 8: average memory (MB), OnePlus 12 "
                            "(measured | paper)");

    auto dev = gpusim::DeviceProfile::onePlus12();
    core::FlashMem fm(dev);

    std::vector<std::string> headers = {"Model"};
    for (auto fw : baselines::allFrameworks())
        headers.push_back(baselines::frameworkName(fw));
    headers.push_back("Ours");
    headers.push_back("Mem-ReDT");
    headers.push_back("(paper)");
    Table t(headers);

    const std::map<ModelId, double> paper_redt = {
        {ModelId::GPTNeoS, 2.1},       {ModelId::GPTNeo1_3B, 4.8},
        {ModelId::ResNet50, 1.7},      {ModelId::SAM2, 6.0},
        {ModelId::ViT, 4.7},           {ModelId::DeepViT, 5.0},
        {ModelId::SDUNet, 2.5},        {ModelId::WhisperMedium, 6.0},
        {ModelId::DepthAnythingS, 1.7}, {ModelId::DepthAnythingL, 4.9},
    };

    std::map<FrameworkId, metrics::RatioSummary> reductions;
    std::map<ModelId, double> redt;
    bool ok = true;

    for (const auto &spec : models::modelZoo()) {
        const auto &g = cachedModel(spec.id);
        gpusim::GpuSimulator sim(dev);
        auto flash = fm.execute(sim, cachedCompiled(fm, spec.id));
        double flash_mb = flash.avgMemoryBytes / (1024.0 * 1024.0);

        std::vector<std::string> cells = {spec.abbr};
        for (auto fw : baselines::allFrameworks()) {
            auto r = runBaseline(fw, g, dev);
            bool usable = r.has_value() && !r->oom;
            double paper = paperTable8(fw, spec.id);
            std::string cell = !r ? "-" : (r->oom ? "OOM" : "");
            if (usable) {
                double mb = r->avgMemoryBytes / (1024.0 * 1024.0);
                cell = formatDouble(mb, 0);
                reductions[fw].add(mb / flash_mb);
                ok &= mb > flash_mb; // FlashMem always leanest
                if (fw == FrameworkId::SmartMem)
                    redt[spec.id] = mb / flash_mb;
            }
            if (paper >= 0)
                cell += " | " + formatDouble(paper, 0);
            cells.push_back(cell);
        }
        cells.push_back(formatDouble(flash_mb, 0) + " | " +
                        formatDouble(paperTable8Flash(spec.id), 0));
        cells.push_back(redt.count(spec.id)
                            ? formatRatio(redt[spec.id])
                            : "-");
        cells.push_back(paper_redt.count(spec.id)
                            ? formatRatio(paper_redt.at(spec.id))
                            : "-");
        t.addRow(cells);
    }
    t.print(std::cout);

    const std::map<FrameworkId, double> paper_geo = {
        {FrameworkId::MNN, 3.2},        {FrameworkId::NCNN, 2.0},
        {FrameworkId::TVM, 8.4},        {FrameworkId::LiteRT, 7.9},
        {FrameworkId::ExecuTorch, 3.4}, {FrameworkId::SmartMem, 3.5},
    };
    Table s({"Framework", "geo-mean reduction", "(paper)"});
    for (auto fw : baselines::allFrameworks()) {
        s.addRow({baselines::frameworkName(fw),
                  formatRatio(reductions[fw].geomean()),
                  formatRatio(paper_geo.at(fw))});
    }
    s.print(std::cout);

    // Shape: transformer reductions beat the conv-heavy models
    // (Winograd-style transform residency limits conv streaming).
    double big_tf =
        std::max({redt[ModelId::GPTNeo1_3B], redt[ModelId::DeepViT],
                  redt[ModelId::WhisperMedium]});
    double conv =
        std::min({redt[ModelId::ResNet50],
                  redt[ModelId::DepthAnythingS]});
    ok &= big_tf > conv;
    ok &= reductions[FrameworkId::SmartMem].geomean() > 1.8;
    std::cout << "\nShape check (FlashMem leanest everywhere, "
                 "transformers reduce most): "
              << (ok ? "PASS" : "FAIL") << "\n";
    return ok ? 0 : 1;
}
