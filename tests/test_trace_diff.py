#!/usr/bin/env python3
"""Self-test for tools/trace_diff.py.

The diff tool is the triage entry point when a determinism ctest goes
red, so its own behavior needs proof-of-life: identical traces must
exit 0, a perturbed trace must exit 1 AND the report must pinpoint the
first divergent line (not some later cascade line), and a truncated
trace must diverge at the cut point.

Run directly or via ctest (trace_diff_selftest).
"""

import os
import subprocess
import sys
import tempfile
import unittest

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
TOOL = os.path.join(REPO, "tools", "trace_diff.py")

BASE_TRACE = """\
[t=0] request_arrival req=0 model=r50 bound=150000000
[t=0] admission_verdict req=0 model=r50 verdict=admit tier=-1
[t=0] request_dispatch req=0 run=0 dev=0 model=r50 start=0 init_done=1000 end=2000
[t=1000] request_arrival req=1 model=vit bound=150000000
[t=1000] admission_verdict req=1 model=vit verdict=shed tier=-1
[t=2000] request_complete req=0 run=0 dev=0 model=r50 start=0 init_done=1000
"""


def run_diff(*args):
    proc = subprocess.run(
        [sys.executable, TOOL, *args],
        capture_output=True, text=True, cwd=REPO)
    return proc.returncode, proc.stdout, proc.stderr


class TraceDiffTest(unittest.TestCase):
    def setUp(self):
        self.dir = tempfile.TemporaryDirectory()
        self.addCleanup(self.dir.cleanup)

    def write(self, name, text):
        path = os.path.join(self.dir.name, name)
        with open(path, "w", encoding="utf-8") as f:
            f.write(text)
        return path

    def test_identical_traces_exit_zero(self):
        a = self.write("a.trace", BASE_TRACE)
        b = self.write("b.trace", BASE_TRACE)
        rc, out, err = run_diff(a, b)
        self.assertEqual(rc, 0, f"expected identical\n{out}{err}")
        self.assertIn("traces identical", out)

    def test_perturbed_trace_pinpoints_first_divergence(self):
        # Perturb line 4 (the second arrival) AND line 6; the report
        # must name line 4, not the later cascade difference.
        lines = BASE_TRACE.splitlines()
        lines[3] = lines[3].replace("model=vit", "model=gptS")
        lines[5] = lines[5].replace("init_done=1000", "init_done=900")
        a = self.write("a.trace", BASE_TRACE)
        b = self.write("b.trace", "\n".join(lines) + "\n")
        rc, out, err = run_diff(a, b)
        self.assertEqual(rc, 1, f"expected divergence\n{out}{err}")
        self.assertIn("diverge at line 4", out)
        self.assertIn("model=vit", out)
        self.assertIn("model=gptS", out)

    def test_truncated_trace_diverges_at_cut(self):
        lines = BASE_TRACE.splitlines()
        a = self.write("a.trace", BASE_TRACE)
        b = self.write("b.trace", "\n".join(lines[:4]) + "\n")
        rc, out, err = run_diff(a, b)
        self.assertEqual(rc, 1, f"expected divergence\n{out}{err}")
        self.assertIn("diverge at line 5", out)
        self.assertIn("<end of trace>", out)

    def test_context_flag_limits_shown_lines(self):
        lines = BASE_TRACE.splitlines()
        lines[5] = lines[5].replace("run=0", "run=7")
        a = self.write("a.trace", BASE_TRACE)
        b = self.write("b.trace", "\n".join(lines) + "\n")
        rc, out, _ = run_diff(a, b, "--context", "1")
        self.assertEqual(rc, 1)
        # One context line shown, four omitted.
        self.assertIn("4 identical line(s) omitted", out)

    def test_unreadable_file_exits_two(self):
        a = self.write("a.trace", BASE_TRACE)
        rc, _, err = run_diff(a, os.path.join(self.dir.name, "nope"))
        self.assertEqual(rc, 2)
        self.assertIn("cannot read", err)


if __name__ == "__main__":
    unittest.main()
