/**
 * @file
 * Tests for the observability layer (obs/trace.hh): the
 * trace-determinism property (byte-identical text export across
 * planner thread counts; fast-sim vs EventScheduler Stream::Serving
 * equality under a mixed fault + admission schedule), Chrome JSON
 * structural sanity, CounterRegistry semantics, and the
 * severity-leveled logging helpers (common/logging.hh).
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/logging.hh"
#include "core/flashmem.hh"
#include "multidnn/scheduler.hh"
#include "obs/trace.hh"
#include "serving/admission.hh"
#include "serving/sweep.hh"

namespace flashmem::obs {
namespace {

using models::ModelId;
using multidnn::DeadlinePolicy;
using serving::AdmissionController;
using serving::ModelMix;
using serving::ServiceEstimator;
using serving::calibrateServices;
using serving::poissonTrace;
using serving::ServingSimParams;
using serving::simulateServing;

// ------------------------------------------------ recorder basics

TEST(TraceRecorder, TextExportIsSortedAndTagged)
{
    TraceRecorder rec;
    // Emit out of time order: the export must sort (stably) by time.
    rec.requestComplete(milliseconds(2), 0, 0, 0,
                        static_cast<std::int32_t>(ModelId::ResNet50),
                        0, milliseconds(1));
    rec.requestArrival(0, 0,
                       static_cast<std::int32_t>(ModelId::ResNet50),
                       milliseconds(150));

    auto text = rec.text();
    auto arrival = text.find("request_arrival");
    auto complete = text.find("request_complete");
    ASSERT_NE(arrival, std::string::npos);
    ASSERT_NE(complete, std::string::npos);
    EXPECT_LT(arrival, complete);
    EXPECT_NE(text.find("model=ResNet50"), std::string::npos) << text;
    EXPECT_NE(text.find("bound=150000000"), std::string::npos);
}

TEST(TraceRecorder, ServingStreamExcludesPlannerEvents)
{
    TraceRecorder rec;
    rec.replan(0, static_cast<std::int32_t>(ModelId::ViT), mib(256),
               0, 3);
    rec.solverWindow(0, 0, static_cast<std::int32_t>(ModelId::ViT),
                     1, 2, 3, 1);
    rec.requestShed(0, 7, static_cast<std::int32_t>(ModelId::ViT),
                    /*reason=*/0, /*attempts=*/0);

    auto full = rec.text(Stream::Full);
    EXPECT_NE(full.find("replan"), std::string::npos);
    EXPECT_NE(full.find("solver_window"), std::string::npos);

    auto serving = rec.text(Stream::Serving);
    EXPECT_EQ(serving.find("replan"), std::string::npos) << serving;
    EXPECT_EQ(serving.find("solver_window"), std::string::npos);
    EXPECT_NE(serving.find("request_shed"), std::string::npos);
    EXPECT_NE(serving.find("reason=admission"), std::string::npos);
}

TEST(TraceRecorder, ChromeJsonHasTracksAndBalancedBraces)
{
    TraceRecorder rec;
    rec.requestArrival(0, 0,
                       static_cast<std::int32_t>(ModelId::ResNet50),
                       0);
    rec.requestDispatch(0, 0, 0, /*device=*/0,
                        static_cast<std::int32_t>(ModelId::ResNet50),
                        0, milliseconds(1), milliseconds(2));
    rec.requestComplete(milliseconds(2), 0, 0, 0,
                        static_cast<std::int32_t>(ModelId::ResNet50),
                        0, milliseconds(1));
    rec.faultInjected(milliseconds(1), 0, 0, /*kind=*/0,
                      milliseconds(5), 0);
    rec.replan(0, static_cast<std::int32_t>(ModelId::ResNet50),
               mib(256), 0, 2);

    std::ostringstream os;
    rec.writeChromeJson(os);
    auto json = os.str();

    EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u) << json;
    EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""),
              std::string::npos);
    // The track metadata Perfetto keys lanes off.
    EXPECT_NE(json.find("dev 0 compute"), std::string::npos);
    EXPECT_NE(json.find("dev 0 dma"), std::string::npos);
    EXPECT_NE(json.find("\"planner\""), std::string::npos);
    EXPECT_NE(json.find("\"requests\""), std::string::npos);
    // Async request lane: begin and end with a shared id.
    EXPECT_NE(json.find("\"ph\":\"b\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"e\""), std::string::npos);

    std::int64_t braces = 0, brackets = 0;
    for (char ch : json) {
        braces += ch == '{';
        braces -= ch == '}';
        brackets += ch == '[';
        brackets -= ch == ']';
    }
    EXPECT_EQ(braces, 0);
    EXPECT_EQ(brackets, 0);
}

// -------------------------------------------------- counter registry

TEST(CounterRegistry, SnapshotIsSortedCountersThenGauges)
{
    CounterRegistry reg;
    EXPECT_TRUE(reg.empty());
    reg.add("zeta");
    reg.add("alpha", 2);
    reg.add("alpha", 3);
    reg.setGauge("beta", 9);
    reg.setGauge("beta", 4); // last write wins

    EXPECT_EQ(reg.value("alpha"), 5);
    EXPECT_EQ(reg.value("zeta"), 1);
    EXPECT_EQ(reg.value("beta"), 4);
    EXPECT_EQ(reg.value("missing"), 0);
    EXPECT_FALSE(reg.empty());

    auto snap = reg.snapshot();
    ASSERT_EQ(snap.size(), 3u);
    EXPECT_EQ(snap[0].first, "alpha"); // counters sorted first
    EXPECT_EQ(snap[1].first, "zeta");
    EXPECT_EQ(snap[2].first, "beta"); // then gauges

    std::ostringstream os;
    reg.writeText(os);
    EXPECT_EQ(os.str(), "counter alpha = 5\n"
                        "counter zeta = 1\n"
                        "gauge beta = 4\n");
}

// ------------------------------------------------------- logging

TEST(Logging, LevelRoundTripsAndRestores)
{
    auto before = logLevel();
    setLogLevel(LogLevel::Debug);
    EXPECT_EQ(logLevel(), LogLevel::Debug);
    setLogLevel(LogLevel::Silent);
    EXPECT_EQ(logLevel(), LogLevel::Silent);
    setLogLevel(before);
}

TEST(Logging, RateLimitedWarnCountsAndSuppresses)
{
    auto before = logLevel();
    setLogLevel(LogLevel::Silent); // counters only, no stderr noise
    RateLimitedWarn limited(/*limit=*/3);
    for (int i = 0; i < 10; ++i)
        limited("recurring condition ", i);
    EXPECT_EQ(limited.seen(), 10u);
    EXPECT_EQ(limited.suppressed(), 7u);

    RateLimitedWarn quiet;
    EXPECT_EQ(quiet.seen(), 0u);
    EXPECT_EQ(quiet.suppressed(), 0u);
    setLogLevel(before);
}

// ------------------------------------- the determinism property

/** The fig6 determinism workload: memory-aware re-planning under a
 * tight shared budget, so the planner-side events (replan,
 * solver_window) are exercised. */
multidnn::ScheduleOutcome
runTracedSchedulerArm(int planner_threads, TraceRecorder &rec)
{
    core::PlanMemo memo(1024);
    core::FlashMemOptions opt;
    opt.opg.parallel.threads = planner_threads;
    opt.opg.memo = &memo;
    core::FlashMem fm(gpusim::DeviceProfile::onePlus12(), opt);
    multidnn::SchedulerConfig cfg;
    cfg.capacityBudget = mib(768);
    cfg.trace = &rec;
    multidnn::EventScheduler sched(fm, cfg);
    auto queue = multidnn::interleavedWorkload(
        {ModelId::ResNet50, ModelId::GPTNeoS, ModelId::DepthAnythingS},
        /*iterations=*/2, /*gap=*/milliseconds(10), /*seed=*/17);
    return sched.run(queue, multidnn::MemoryAwarePolicy{});
}

TEST(TraceDeterminism, SchedulerTraceIdenticalAcrossPlannerThreads)
{
    TraceRecorder rec1, rec4;
    auto out1 = runTracedSchedulerArm(1, rec1);
    auto out4 = runTracedSchedulerArm(4, rec4);

    // The workload actually re-planned, so the trace carries
    // planner-side events whose payloads come from the parallel
    // window solves — the part thread count could plausibly perturb.
    ASSERT_GT(out1.replans, 0);
    ASSERT_EQ(out1.replans, out4.replans);
    auto text1 = rec1.text();
    ASSERT_NE(text1.find("replan "), std::string::npos);
    ASSERT_NE(text1.find("solver_window"), std::string::npos);
    ASSERT_NE(text1.find("request_dispatch"), std::string::npos);

    // Byte-identical export for any planner thread count.
    EXPECT_EQ(text1, rec4.text());
}

TEST(TraceDeterminism, FastSimMatchesEventSchedulerServingStream)
{
    // The mixed schedule of the fault cross-validation test PLUS the
    // arrival-admission gate: both execution paths drain the same
    // shared event loop, so their Stream::Serving exports must be
    // byte-identical — arrival order, verdicts, dispatch timelines,
    // retries, fault deliveries, health transitions, all of it.
    core::FlashMem fm(gpusim::DeviceProfile::onePlus12());
    ModelMix mix;
    mix.entries = {{ModelId::ResNet50, 2.0, milliseconds(150), 0},
                   {ModelId::DepthAnythingS, 1.0, milliseconds(400),
                    0},
                   {ModelId::ResNet50, 1.0, 0, 0}};
    auto services = calibrateServices(fm, mix.distinctModels());
    auto trace = poissonTrace(mix, 60.0, 2500, /*seed=*/61);

    multidnn::FaultPlanParams fp;
    fp.stallsPerSecond = 0.5;
    fp.meanStall = milliseconds(40);
    fp.dmaErrorsPerSecond = 1.0;
    auto plan = multidnn::crashAndRejoin(0, milliseconds(500),
                                         milliseconds(400));
    plan = multidnn::mergeFaultPlans(
        plan, multidnn::singleSlowdown(1, milliseconds(200),
                                       milliseconds(600), 3.0));
    plan = multidnn::mergeFaultPlans(
        plan, multidnn::generateFaultPlan(fp, 2, seconds(30), 7));

    // One shared gate, per-path recorders (the ArrivalAdmission
    // contract: hand the SAME gate object to both paths).
    ServiceEstimator estimator(services);
    AdmissionController gate(estimator);
    DeadlinePolicy policy;

    TraceRecorder fast_rec;
    ServingSimParams params;
    params.readyLimit = 0;
    params.cluster.deviceCount = 2;
    params.cluster.overlapInitWithExec = true;
    params.faults = plan;
    params.arrival = &gate;
    params.trace = &fast_rec;
    auto fast = simulateServing(trace, policy, services, params);
    gate.resetDecisions();

    TraceRecorder real_rec;
    multidnn::SchedulerConfig cfg;
    cfg.cluster.deviceCount = 2;
    cfg.cluster.overlapInitWithExec = true;
    cfg.faults = plan;
    cfg.arrivalAdmission = &gate;
    cfg.trace = &real_rec;
    multidnn::EventScheduler sched(fm, cfg);
    auto real = sched.run(trace, policy);

    // The schedule actually bit: faults, retries, and verdicts all
    // appear in the stream being compared.
    ASSERT_GT(real.faults.retries, 0);
    auto fast_text = fast_rec.text(Stream::Serving);
    ASSERT_NE(fast_text.find("fault_injected"), std::string::npos);
    ASSERT_NE(fast_text.find("retry_scheduled"), std::string::npos);
    ASSERT_NE(fast_text.find("admission_verdict"), std::string::npos);
    ASSERT_NE(fast_text.find("device_health"), std::string::npos);

    EXPECT_EQ(fast_text, real_rec.text(Stream::Serving));
    EXPECT_EQ(real.runs.size(), fast.stats.completed());

    // The admission counters export deterministically.
    CounterRegistry reg;
    gate.exportCounters(reg);
    EXPECT_EQ(reg.value("admission.admitted") +
                  reg.value("admission.degraded") +
                  reg.value("admission.shed"),
              static_cast<std::int64_t>(gate.decisions().total()));
}

} // namespace
} // namespace flashmem::obs
