/**
 * @file
 * Unit tests for src/common: time/size units, RNG determinism, statistics
 * accumulators, time series, and table rendering.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include <atomic>
#include <stdexcept>

#include "common/rng.hh"
#include "common/stats.hh"
#include "common/strutil.hh"
#include "common/table.hh"
#include "common/thread_pool.hh"
#include "common/types.hh"

namespace flashmem {
namespace {

TEST(Types, TimeUnitRoundTrip)
{
    EXPECT_EQ(milliseconds(1.0), 1'000'000);
    EXPECT_EQ(microseconds(1.0), 1'000);
    EXPECT_EQ(seconds(2.0), 2'000'000'000);
    EXPECT_DOUBLE_EQ(toMilliseconds(milliseconds(123.0)), 123.0);
    EXPECT_DOUBLE_EQ(toSeconds(seconds(4.0)), 4.0);
}

TEST(Types, ByteUnits)
{
    EXPECT_EQ(kib(1), 1024u);
    EXPECT_EQ(mib(1), 1024u * 1024u);
    EXPECT_EQ(gib(1), 1024ull * 1024 * 1024);
    EXPECT_DOUBLE_EQ(toMiB(mib(512)), 512.0);
    EXPECT_DOUBLE_EQ(toGiB(gib(3)), 3.0);
}

TEST(Types, BandwidthTransferTime)
{
    auto bw = Bandwidth::gbps(1.0); // 1 GB/s
    EXPECT_EQ(bw.transferTime(1'000'000'000ull), seconds(1.0));
    // Rounds up: 1 byte at 1 GB/s is 1 ns exactly.
    EXPECT_EQ(bw.transferTime(1), 1);
    // Zero bandwidth means "never".
    EXPECT_EQ(Bandwidth{0.0}.transferTime(1), kTimeNever);
}

TEST(Types, BandwidthNeverReturnsZeroForNonzeroBytes)
{
    auto bw = Bandwidth::gbps(560.0); // fastest channel in the model
    EXPECT_GT(bw.transferTime(1), 0);
}

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 5);
}

TEST(Rng, UniformBounds)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
    }
}

TEST(Rng, UniformIntInclusiveBounds)
{
    Rng rng(7);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 10000; ++i) {
        auto v = rng.uniformInt(3, 8);
        ASSERT_GE(v, 3);
        ASSERT_LE(v, 8);
        saw_lo |= (v == 3);
        saw_hi |= (v == 8);
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, GaussianMoments)
{
    Rng rng(11);
    RunningStat st;
    for (int i = 0; i < 50000; ++i)
        st.add(rng.gaussian(10.0, 2.0));
    EXPECT_NEAR(st.mean(), 10.0, 0.1);
    EXPECT_NEAR(st.stddev(), 2.0, 0.1);
}

TEST(RunningStat, BasicMoments)
{
    RunningStat st;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        st.add(v);
    EXPECT_EQ(st.count(), 8u);
    EXPECT_DOUBLE_EQ(st.mean(), 5.0);
    EXPECT_DOUBLE_EQ(st.min(), 2.0);
    EXPECT_DOUBLE_EQ(st.max(), 9.0);
    EXPECT_NEAR(st.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
    EXPECT_DOUBLE_EQ(st.sum(), 40.0);
}

TEST(RunningStat, EmptyIsZero)
{
    RunningStat st;
    EXPECT_EQ(st.count(), 0u);
    EXPECT_DOUBLE_EQ(st.mean(), 0.0);
    EXPECT_DOUBLE_EQ(st.variance(), 0.0);
}

// ------------------------------------------------- P2 quantile estimator

/** Exact empirical quantile by sorting (nearest-rank). */
double
exactQuantile(std::vector<double> xs, double p)
{
    std::sort(xs.begin(), xs.end());
    auto rank = static_cast<std::size_t>(
        std::ceil(p * static_cast<double>(xs.size())));
    rank = std::min(std::max<std::size_t>(rank, 1), xs.size());
    return xs[rank - 1];
}

TEST(P2Quantile, ExactForSmallStreams)
{
    P2Quantile q(0.5);
    EXPECT_EQ(q.value(), 0.0);
    q.add(30.0);
    EXPECT_DOUBLE_EQ(q.value(), 30.0);
    q.add(10.0);
    q.add(20.0);
    // Nearest-rank median of {10, 20, 30}.
    EXPECT_DOUBLE_EQ(q.value(), 20.0);
    EXPECT_EQ(q.count(), 3u);
}

TEST(P2Quantile, TracksUniformQuantiles)
{
    // 50k uniform draws: the estimate must land within 1% of the range
    // of the exact sorted quantile, for the median and both tails.
    Rng rng(42);
    std::vector<double> xs;
    P2Quantile p50(0.50), p95(0.95), p99(0.99);
    for (int i = 0; i < 50000; ++i) {
        double x = rng.uniform(0.0, 1000.0);
        xs.push_back(x);
        p50.add(x);
        p95.add(x);
        p99.add(x);
    }
    EXPECT_NEAR(p50.value(), exactQuantile(xs, 0.50), 10.0);
    EXPECT_NEAR(p95.value(), exactQuantile(xs, 0.95), 10.0);
    EXPECT_NEAR(p99.value(), exactQuantile(xs, 0.99), 10.0);
}

TEST(P2Quantile, TracksHeavyTailedQuantiles)
{
    // Exponential tail (the shape request latencies take): estimates
    // stay within 3% of the exact quantile value.
    Rng rng(7);
    std::vector<double> xs;
    P2Quantile p50(0.50), p99(0.99);
    for (int i = 0; i < 100000; ++i) {
        double x = -std::log1p(-rng.uniform());
        xs.push_back(x);
        p50.add(x);
        p99.add(x);
    }
    double exact50 = exactQuantile(xs, 0.50);
    double exact99 = exactQuantile(xs, 0.99);
    EXPECT_NEAR(p50.value(), exact50, 0.03 * exact50);
    EXPECT_NEAR(p99.value(), exact99, 0.03 * exact99);
    // ~ln 2 and ~ln 100 analytically.
    EXPECT_NEAR(p50.value(), std::log(2.0), 0.05);
    EXPECT_NEAR(p99.value(), std::log(100.0), 0.25);
}

TEST(P2Quantile, MatchesExactQuantileBelowFiveSamples)
{
    // The estimator only switches to the parabolic marker update at
    // five samples; before that value() must be the exact nearest-rank
    // quantile of the stored observations, at every probed p.
    const std::vector<double> stream = {42.0, 7.0, 19.0, 3.5};
    for (double p : {0.10, 0.50, 0.90, 0.99}) {
        std::vector<double> xs;
        P2Quantile q(p);
        for (double x : stream) {
            q.add(x);
            xs.push_back(x);
            EXPECT_DOUBLE_EQ(q.value(), exactQuantile(xs, p))
                << "p=" << p << " n=" << xs.size();
        }
    }
}

TEST(P2Quantile, ConstantStreamCollapsesToTheValue)
{
    // All five markers land on the same height: the degenerate case
    // for the parabolic update (every marker gap is zero).
    P2Quantile q(0.99);
    for (int i = 0; i < 10000; ++i)
        q.add(250.0);
    EXPECT_EQ(q.count(), 10000u);
    EXPECT_DOUBLE_EQ(q.value(), 250.0);
}

TEST(P2Quantile, DuplicateHeavyStreamStaysNearExact)
{
    // Latency streams over a calibrated service table are massively
    // duplicate-heavy: every uncontended run of a model costs the same
    // integer nanoseconds, so adjacent markers collide constantly —
    // exactly where the parabolic update degenerates. The estimate
    // must stay inside the observed range and track the exact sorted
    // quantile (both probed quantiles sit well inside a plateau, so
    // the exact answer is stable against sampling noise).
    Rng rng(21);
    const double values[] = {10.0, 10.0, 10.0, 10.0, 40.0, 160.0};
    std::vector<double> xs;
    P2Quantile p50(0.50), p99(0.99);
    for (int i = 0; i < 30000; ++i) {
        double x = values[rng.uniformInt(0, 5)];
        xs.push_back(x);
        p50.add(x);
        p99.add(x);
    }
    double exact50 = exactQuantile(xs, 0.50); // inside the 10-plateau
    double exact99 = exactQuantile(xs, 0.99); // inside the 160-plateau
    EXPECT_DOUBLE_EQ(exact50, 10.0);
    EXPECT_DOUBLE_EQ(exact99, 160.0);
    EXPECT_GE(p50.value(), 10.0);
    EXPECT_LE(p99.value(), 160.0);
    EXPECT_NEAR(p50.value(), exact50, 0.25 * exact50);
    EXPECT_NEAR(p99.value(), exact99, 0.25 * exact99);
}

TEST(P2Quantile, IsDeterministicForAGivenStream)
{
    Rng a(11), b(11);
    P2Quantile qa(0.95), qb(0.95);
    for (int i = 0; i < 10000; ++i) {
        qa.add(a.gaussian(100.0, 15.0));
        qb.add(b.gaussian(100.0, 15.0));
    }
    EXPECT_EQ(qa.value(), qb.value()); // bit-identical
}

TEST(Geomean, MatchesClosedForm)
{
    EXPECT_DOUBLE_EQ(geomean({2.0, 8.0}), 4.0);
    EXPECT_NEAR(geomean({1.0, 10.0, 100.0}), 10.0, 1e-9);
}

TEST(Geomean, IgnoresNonPositive)
{
    EXPECT_DOUBLE_EQ(geomean({2.0, 8.0, 0.0, -5.0}), 4.0);
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
}

TEST(TimeSeries, PeakAndAverage)
{
    TimeSeries ts;
    ts.record(0, 100.0);
    ts.record(milliseconds(10), 300.0);
    ts.record(milliseconds(20), 0.0);
    EXPECT_DOUBLE_EQ(ts.peak(), 300.0);
    // 100 for 10ms, 300 for 10ms => avg 200 over [0, 20ms].
    EXPECT_DOUBLE_EQ(ts.timeWeightedAverage(0, milliseconds(20)), 200.0);
}

TEST(TimeSeries, ValueAt)
{
    TimeSeries ts;
    ts.record(10, 1.0);
    ts.record(20, 2.0);
    EXPECT_DOUBLE_EQ(ts.valueAt(5), 0.0);
    EXPECT_DOUBLE_EQ(ts.valueAt(10), 1.0);
    EXPECT_DOUBLE_EQ(ts.valueAt(15), 1.0);
    EXPECT_DOUBLE_EQ(ts.valueAt(25), 2.0);
}

TEST(TimeSeries, SameTimestampLastWriteWins)
{
    TimeSeries ts;
    ts.record(10, 1.0);
    ts.record(10, 5.0);
    EXPECT_DOUBLE_EQ(ts.valueAt(10), 5.0);
    EXPECT_EQ(ts.points().size(), 1u);
}

TEST(TimeSeries, WindowedAverageSubrange)
{
    TimeSeries ts;
    ts.record(0, 10.0);
    ts.record(100, 20.0);
    ts.record(200, 30.0);
    EXPECT_DOUBLE_EQ(ts.timeWeightedAverage(100, 200), 20.0);
    EXPECT_DOUBLE_EQ(ts.timeWeightedAverage(150, 250), 25.0);
}

TEST(StrUtil, Formatting)
{
    EXPECT_EQ(formatDouble(3.14159, 2), "3.14");
    EXPECT_EQ(formatWithCommas(1234567), "1,234,567");
    EXPECT_EQ(formatWithCommas(-1234), "-1,234");
    EXPECT_EQ(formatBytes(mib(1.5)), "1.5 MB");
    EXPECT_EQ(formatRatio(8.44), "8.4x");
    EXPECT_EQ(formatMs(milliseconds(3212)), "3,212 ms");
    EXPECT_EQ(formatMs(microseconds(500)), "500.0 us");
}

TEST(Table, RendersAlignedColumns)
{
    Table t({"Model", "Latency"});
    t.addRow({"ViT", "347"});
    t.addRow({"GPTN-1.3B", "3086"});
    std::string s = t.toString();
    EXPECT_NE(s.find("Model"), std::string::npos);
    EXPECT_NE(s.find("GPTN-1.3B"), std::string::npos);
    // All lines share the same width.
    std::size_t first_nl = s.find('\n');
    std::size_t width = first_nl;
    std::size_t pos = 0;
    while (pos < s.size()) {
        std::size_t nl = s.find('\n', pos);
        if (nl == std::string::npos)
            break;
        EXPECT_EQ(nl - pos, width);
        pos = nl + 1;
    }
}

TEST(Table, PadsShortRows)
{
    Table t({"A", "B", "C"});
    t.addRow({"x"});
    EXPECT_EQ(t.rowCount(), 1u);
    EXPECT_NE(t.toString().find("x"), std::string::npos);
}

TEST(ThreadPool, ThrowingTaskReachesWaiterAndPoolStaysUsable)
{
    ThreadPool pool(2);

    auto bad = pool.submit([]() -> int {
        throw std::runtime_error("task exploded");
    });
    EXPECT_THROW(
        {
            try {
                bad.get();
            } catch (const std::runtime_error &e) {
                EXPECT_STREQ(e.what(), "task exploded");
                throw;
            }
        },
        std::runtime_error);

    // The worker that ran the throwing task is still alive: the pool
    // keeps draining work on all threads afterwards.
    // FMLINT(allow:cross-thread-state) test-only completion counter: only the final total is asserted, order-independent
    std::atomic<int> ran{0};
    std::vector<std::future<int>> futures;
    for (int i = 0; i < 32; ++i)
        futures.push_back(pool.submit([i, &ran]() {
            ++ran;
            return i * i;
        }));
    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
    EXPECT_EQ(ran.load(), 32);
    EXPECT_EQ(pool.pendingTasks(), 0u);
}

TEST(ThreadPool, ManyThrowingTasksInterleavedWithGoodOnes)
{
    ThreadPool pool(3);
    std::vector<std::future<int>> futures;
    for (int i = 0; i < 60; ++i)
        futures.push_back(pool.submit([i]() -> int {
            if (i % 3 == 0)
                throw std::logic_error("odd one out");
            return i;
        }));
    int ok = 0, threw = 0;
    for (auto &f : futures) {
        try {
            f.get();
            ++ok;
        } catch (const std::logic_error &) {
            ++threw;
        }
    }
    EXPECT_EQ(ok, 40);
    EXPECT_EQ(threw, 20);
}

} // namespace
} // namespace flashmem
