/**
 * @file
 * Tests for arrival-time admission (serving/admission.hh): the
 * three-tier service-estimate ladder (calibrated / GBT-predicted /
 * pessimistic), the backlog gate's verdicts on hand-built cluster
 * states, drop accounting through the fast simulator, and the
 * fast-sim-vs-EventScheduler bit-exact cross-validation with the gate
 * enabled and a cold model in the mix.
 */

#include <gtest/gtest.h>

#include "core/flashmem.hh"
#include "multidnn/scheduler.hh"
#include "serving/admission.hh"
#include "serving/sweep.hh"

namespace flashmem::serving {
namespace {

using models::ModelId;
using multidnn::Admission;
using multidnn::DeadlinePolicy;
using multidnn::DeviceCluster;
using multidnn::DropReason;
using multidnn::ReadyRequest;

/** Hand-written calibration: ResNet 10 ms, ViT 40 ms; degraded plans
 * run 50% longer at half the budget. */
ServiceTable
handTable()
{
    ServiceTable table;
    table[ModelId::ResNet50] = {milliseconds(10), milliseconds(15),
                                mib(200), mib(120), mib(512),
                                mib(256)};
    table[ModelId::ViT] = {milliseconds(40), milliseconds(60),
                           mib(300), mib(180), mib(512), mib(256)};
    return table;
}

ReadyRequest
request(ModelId model, SimTime arrival, SimTime bound)
{
    ReadyRequest r;
    r.model = model;
    r.arrival = arrival;
    r.latencyBound = bound;
    return r;
}

// --------------------------------------------- the estimate ladder

TEST(Estimator, CalibratedTierPassesThrough)
{
    ServiceEstimator est(handTable());
    EXPECT_EQ(est.calibratedCount(), 2u);
    const auto &e = est.estimate(ModelId::ResNet50);
    EXPECT_EQ(e.tier, EstimateTier::Calibrated);
    EXPECT_EQ(e.service, milliseconds(10));
    EXPECT_EQ(e.degradedService, milliseconds(15));
}

TEST(Estimator, PessimisticWithoutPredictor)
{
    EstimatorParams params;
    params.usePredictor = false;
    ServiceEstimator est(handTable(), params);
    EXPECT_FALSE(est.predictorTrained());
    // 2x the slowest calibrated service (ViT: 40 / 60 ms).
    const auto &e = est.estimate(ModelId::DeepViT);
    EXPECT_EQ(e.tier, EstimateTier::Pessimistic);
    EXPECT_EQ(e.service, milliseconds(80));
    EXPECT_EQ(e.degradedService, milliseconds(120));
}

TEST(Estimator, PessimisticWhenTooFewCalibratedModels)
{
    // One calibrated model cannot train a predictor (no held-out
    // residual exists); cold models get the pessimistic tier.
    ServiceTable table;
    table[ModelId::ResNet50] = handTable()[ModelId::ResNet50];
    ServiceEstimator est(table);
    EXPECT_FALSE(est.predictorTrained());
    EXPECT_EQ(est.estimate(ModelId::ViT).tier,
              EstimateTier::Pessimistic);
    EXPECT_EQ(est.estimate(ModelId::ViT).service, milliseconds(20));
}

TEST(Estimator, EmptyTableFallsBackToFixedService)
{
    EstimatorParams params;
    ServiceEstimator est(ServiceTable{}, params);
    EXPECT_EQ(est.calibratedCount(), 0u);
    const auto &e = est.estimate(ModelId::ResNet50);
    EXPECT_EQ(e.tier, EstimateTier::Pessimistic);
    EXPECT_EQ(e.service, params.fallbackService);
}

TEST(Estimator, PredictedTierIsInflatedAndDeterministic)
{
    ServiceEstimator a(handTable());
    ASSERT_TRUE(a.predictorTrained());
    EXPECT_GE(a.inflation(), EstimatorParams{}.minInflation);
    const auto &cold = a.estimate(ModelId::DeepViT);
    EXPECT_EQ(cold.tier, EstimateTier::Predicted);
    EXPECT_GT(cold.service, 0);
    EXPECT_GT(cold.degradedService, cold.service); // degraded is slower

    // Same inputs, second estimator: bit-identical ladder (seeded GBT,
    // no row subsampling).
    ServiceEstimator b(handTable());
    EXPECT_EQ(a.inflation(), b.inflation());
    for (const auto &spec : models::modelZoo()) {
        EXPECT_EQ(a.estimate(spec.id).service,
                  b.estimate(spec.id).service);
        EXPECT_EQ(a.estimate(spec.id).degradedService,
                  b.estimate(spec.id).degradedService);
    }
}

TEST(Estimator, PredictionTracksModelScale)
{
    // Train on four models spanning 10 ms .. 200 ms; a cold LLM far
    // bigger than everything calibrated must land near the slow end,
    // and a cold vision model near the fast end — the graph features
    // carry the size signal.
    ServiceTable table = handTable();
    table[ModelId::DepthAnythingS] = {milliseconds(20),
                                      milliseconds(30), mib(200),
                                      mib(120), mib(512), mib(256)};
    table[ModelId::GPTNeoS] = {milliseconds(200), milliseconds(300),
                               mib(400), mib(240), mib(512),
                               mib(256)};
    ServiceEstimator est(table);
    ASSERT_TRUE(est.predictorTrained());
    // The efficiency target keeps the ordering even though both cold
    // models are bigger than everything calibrated (a raw service
    // target would saturate them into one leaf).
    EXPECT_GT(est.estimate(ModelId::GPTNeo1_3B).service,
              est.estimate(ModelId::DeepViT).service);
    EXPECT_GT(est.estimate(ModelId::GPTNeo2_7B).service,
              est.estimate(ModelId::GPTNeo1_3B).service);
}

// ------------------------------------------------ the backlog gate

TEST(Controller, AdmitsUnboundedRequests)
{
    ServiceEstimator est(handTable());
    AdmissionController ctrl(est);
    DeviceCluster cluster({});
    auto verdict = ctrl.admitAtArrival(
        0, request(ModelId::ViT, 0, /*bound=*/0), {}, cluster);
    EXPECT_EQ(verdict, Admission::Admit);
    EXPECT_EQ(ctrl.decisions().admitted, 1u);
    EXPECT_EQ(ctrl.decisions().tierCalibrated, 1u);
}

TEST(Controller, ShedsWhenDeviceHorizonBlowsDeadline)
{
    ServiceEstimator est(handTable());
    AdmissionController ctrl(est);
    DeviceCluster cluster({});
    // Busy the lone device's compute until t = 100 ms.
    auto t = cluster.planTimes(0, 0, 0, milliseconds(100));
    cluster.commit(0, ModelId::ViT, 0, t);

    // ResNet (10 ms) due by 50 ms: projected completion 110 ms → shed.
    EXPECT_EQ(ctrl.admitAtArrival(
                  0, request(ModelId::ResNet50, 0, milliseconds(50)),
                  {}, cluster),
              Admission::Shed);
    // Same request due by 200 ms: 110 ms fits → admit.
    EXPECT_EQ(ctrl.admitAtArrival(
                  0, request(ModelId::ResNet50, 0, milliseconds(200)),
                  {}, cluster),
              Admission::Admit);
    EXPECT_EQ(ctrl.decisions().shed, 1u);
    EXPECT_EQ(ctrl.decisions().admitted, 1u);
}

TEST(Controller, QueuedWorkCountsAgainstTheDeadline)
{
    ServiceEstimator est(handTable());
    AdmissionController ctrl(est);
    DeviceCluster cluster({}); // idle
    // Five queued ViTs (40 ms each) due no later than the arriving
    // request = 200 ms of unplaced backlog ahead of it under EDF.
    std::vector<ReadyRequest> ready(
        5, request(ModelId::ViT, 0, milliseconds(100)));

    // ResNet due by 100 ms: starts at ~200 ms → shed.
    EXPECT_EQ(ctrl.admitAtArrival(
                  0, request(ModelId::ResNet50, 0, milliseconds(100)),
                  ready, cluster),
              Admission::Shed);
    // Empty queue: the same request admits.
    EXPECT_EQ(ctrl.admitAtArrival(
                  0, request(ModelId::ResNet50, 0, milliseconds(100)),
                  {}, cluster),
              Admission::Admit);
    // A degraded queued request contributes its degraded estimate:
    // one degraded ViT (60 ms) + bound 100 ms still fits (70 ms).
    std::vector<ReadyRequest> degraded_ready(
        1, request(ModelId::ViT, 0, milliseconds(100)));
    degraded_ready[0].degraded = true;
    EXPECT_EQ(ctrl.admitAtArrival(
                  0, request(ModelId::ResNet50, 0, milliseconds(100)),
                  degraded_ready, cluster),
              Admission::Admit);
}

TEST(Controller, LaterDeadlineQueueDoesNotBlockAdmission)
{
    // Under EDF only earlier-deadline work runs ahead of the arriving
    // request, so a queue full of later-deadline stragglers (the
    // normal shape of an overloaded queue) must not shed a tight
    // request that would actually jump straight to the front.
    ServiceEstimator est(handTable());
    AdmissionController ctrl(est);
    DeviceCluster cluster({}); // idle
    std::vector<ReadyRequest> ready(
        5, request(ModelId::ViT, 0, milliseconds(400)));
    EXPECT_EQ(ctrl.admitAtArrival(
                  0, request(ModelId::ResNet50, 0, milliseconds(100)),
                  ready, cluster),
              Admission::Admit);
}

TEST(Controller, BacklogSpreadsAcrossLiveDevices)
{
    ServiceEstimator est(handTable());
    AdmissionController ctrl(est);
    multidnn::ClusterConfig cfg;
    cfg.deviceCount = 4;
    DeviceCluster cluster(cfg);
    // 200 ms of same-deadline backlog over 4 devices = 50 ms projected
    // start; a ResNet due by 100 ms fits where the single-device case
    // shed.
    std::vector<ReadyRequest> ready(
        5, request(ModelId::ViT, 0, milliseconds(100)));
    EXPECT_EQ(ctrl.admitAtArrival(
                  0, request(ModelId::ResNet50, 0, milliseconds(100)),
                  ready, cluster),
              Admission::Admit);
    // A crashed device drops out of the projection: 200 ms / 3 ≈ 66 ms
    // start + 10 ms still fits; with three of four down (200 ms on one
    // device) it sheds.
    cluster.crash(1, 0);
    EXPECT_EQ(ctrl.admitAtArrival(
                  0, request(ModelId::ResNet50, 0, milliseconds(100)),
                  ready, cluster),
              Admission::Admit);
    cluster.crash(2, 0);
    cluster.crash(3, 0);
    EXPECT_EQ(ctrl.admitAtArrival(
                  0, request(ModelId::ResNet50, 0, milliseconds(100)),
                  ready, cluster),
              Admission::Shed);
}

TEST(Controller, DegradeModeDegradesInsteadOfShedding)
{
    ServiceEstimator est(handTable());
    AdmissionControllerParams params;
    params.mode = DeadlinePolicy::Overload::Degrade;
    AdmissionController ctrl(est, params);
    DeviceCluster cluster({});
    auto t = cluster.planTimes(0, 0, 0, milliseconds(100));
    cluster.commit(0, ModelId::ViT, 0, t);
    EXPECT_EQ(ctrl.admitAtArrival(
                  0, request(ModelId::ResNet50, 0, milliseconds(50)),
                  {}, cluster),
              Admission::Degrade);
    EXPECT_EQ(ctrl.decisions().degraded, 1u);
    EXPECT_EQ(ctrl.decisions().shed, 0u);
}

TEST(Controller, AllDownClusterAdmits)
{
    // Starvation accounting owns the dead-cluster case; the gate must
    // not shed into a momentary total outage racing the rejoins.
    ServiceEstimator est(handTable());
    AdmissionController ctrl(est);
    DeviceCluster cluster({});
    cluster.crash(0, 0);
    EXPECT_EQ(ctrl.admitAtArrival(
                  0, request(ModelId::ResNet50, 0, milliseconds(1)),
                  {}, cluster),
              Admission::Admit);
}

// -------------------------------------------- cold-model influx mix

TEST(ColdInflux, ReweightsMixToTheColdFraction)
{
    ModelMix base;
    base.entries = {{ModelId::ResNet50, 3.0, milliseconds(150), 0},
                    {ModelId::ViT, 1.0, milliseconds(250), 0}};
    auto mix = withColdInflux(
        base, {{ModelId::DeepViT, 1.0, milliseconds(300), 0}}, 0.25);
    ASSERT_EQ(mix.entries.size(), 3u);
    double total = 0.0, cold = 0.0;
    for (const auto &e : mix.entries) {
        total += e.weight;
        if (e.model == ModelId::DeepViT)
            cold += e.weight;
    }
    EXPECT_NEAR(total, 1.0, 1e-12);
    EXPECT_NEAR(cold / total, 0.25, 1e-12);
    // Base entries keep their relative weights and latency bounds.
    EXPECT_NEAR(mix.entries[0].weight / mix.entries[1].weight, 3.0,
                1e-9);
    EXPECT_EQ(mix.entries[2].latencyBound, milliseconds(300));
}

// -------------------------------- the gate inside the event loop

TEST(ArrivalGate, FastSimShedsAtArrivalWithCompleteAccounting)
{
    auto table = handTable();
    ServiceEstimator est(table);
    AdmissionController ctrl(est);

    ModelMix mix;
    mix.entries = {{ModelId::ResNet50, 2.0, milliseconds(30), 0},
                   {ModelId::ViT, 1.0, milliseconds(80), 0}};
    // ~3x the single-device capacity: the backlog gate must engage.
    auto trace = poissonTrace(mix, 150.0, 4000, /*seed=*/11);
    DeadlinePolicy policy;
    ServingSimParams params;
    params.readyLimit = 0;
    params.arrival = &ctrl;
    auto out = simulateServing(trace, policy, table, params);

    ASSERT_GT(out.arrivalSheds, 0u);
    EXPECT_GE(out.stats.shedCount(), out.arrivalSheds);
    // Every submitted request is accounted: completed + shed.
    EXPECT_EQ(out.stats.completed() + out.stats.shedCount(),
              out.submitted);
    // The controller's own ledger covers every arrival it saw.
    EXPECT_EQ(ctrl.decisions().shed, out.arrivalSheds);
}

TEST(ArrivalGate, ImprovesGoodputUnderOverload)
{
    // 4 devices with overlap at 2x capacity: dispatch-point admission
    // checks now + service against the deadline, but the dispatched
    // run queues behind the device's compute horizon (pipeline depth),
    // so under sustained overload the dispatch point is structurally
    // optimistic by about one pipelined run — it concentrates
    // dispatches at the marginal edge and completes them late, burning
    // capacity for zero goodput. The arrival gate projects that
    // backlog and sheds the marginal requests up front. Both models
    // cost the same 10 ms (only their bounds differ), so the
    // comparison is pure timing — the gate cannot win by skewing the
    // served mix toward cheaper requests.
    ServiceTable table;
    table[ModelId::ResNet50] = {milliseconds(10), milliseconds(15),
                                mib(200), mib(120), mib(512),
                                mib(256)};
    table[ModelId::DepthAnythingS] = {milliseconds(10),
                                      milliseconds(15), mib(200),
                                      mib(120), mib(512), mib(256)};
    ServiceEstimator est(table);
    AdmissionController ctrl(est);

    ModelMix mix;
    mix.entries = {{ModelId::ResNet50, 1.0, milliseconds(40), 0},
                   {ModelId::DepthAnythingS, 1.0, milliseconds(80),
                    0}};
    auto trace = poissonTrace(mix, 800.0, 20000, /*seed=*/13);
    DeadlinePolicy policy;
    ServingSimParams params;
    params.readyLimit = 0;
    params.cluster.deviceCount = 4;
    params.cluster.overlapInitWithExec = true;

    auto baseline = simulateServing(trace, policy, table, params);
    params.arrival = &ctrl;
    auto gated = simulateServing(trace, policy, table, params);

    ASSERT_GT(gated.arrivalSheds, 0u);
    EXPECT_EQ(baseline.arrivalSheds, 0u);
    EXPECT_GT(gated.stats.goodputRate(), baseline.stats.goodputRate());
    EXPECT_LE(gated.stats.sloViolations(),
              baseline.stats.sloViolations());
}

TEST(ArrivalGate, CrossValidatesBitExactWithColdModelAtScale)
{
    // The acceptance bar: thousands of requests at 2x overload through
    // both execution paths with the arrival gate enabled AND a cold
    // model in the mix (ViT is absent from the gate's calibration view
    // and estimated by the GBT tier; execution still uses the full
    // oracle table). Counts, goodput, makespan, the full streaming-
    // percentile state, and the arrival-shed ledger must agree
    // exactly — the gate reads only state the two paths share.
    core::FlashMem fm(gpusim::DeviceProfile::onePlus12());
    ModelMix mix;
    mix.entries = {{ModelId::ResNet50, 2.0, milliseconds(150), 0},
                   {ModelId::DepthAnythingS, 1.0, milliseconds(400),
                    0},
                   {ModelId::ViT, 0.5, milliseconds(250), 0}};
    auto oracle = calibrateServices(fm, mix.distinctModels());

    ServiceTable view = oracle;
    view.erase(ModelId::ViT); // ViT is cold for the gate
    ServiceEstimator estimator(view);
    ASSERT_TRUE(estimator.predictorTrained());
    ASSERT_EQ(estimator.estimate(ModelId::ViT).tier,
              EstimateTier::Predicted);
    AdmissionController ctrl(estimator);

    auto trace = poissonTrace(mix, 30.0, 2500, /*seed=*/43);
    DeadlinePolicy policy;

    ServingSimParams params;
    params.readyLimit = 0;
    params.arrival = &ctrl;
    auto fast = simulateServing(trace, policy, oracle, params);
    auto fast_decisions = ctrl.decisions();
    ctrl.resetDecisions();

    multidnn::SchedulerConfig cfg;
    cfg.arrivalAdmission = &ctrl;
    multidnn::EventScheduler sched(fm, cfg);
    auto real = sched.run(trace, policy);
    auto real_stats = ServingStats::fromOutcome(real);

    std::size_t real_arrival_sheds = 0;
    for (const auto &s : real.shed)
        real_arrival_sheds += s.reason == DropReason::ArrivalShed;

    ASSERT_GT(real.runs.size(), 1000u);
    ASSERT_GT(fast.arrivalSheds, 100u); // the gate carried real load
    EXPECT_EQ(real.runs.size(), fast.stats.completed());
    EXPECT_EQ(real.shed.size(), fast.stats.shedCount());
    EXPECT_EQ(real_arrival_sheds, fast.arrivalSheds);
    EXPECT_EQ(real.goodput(), fast.stats.goodput());
    EXPECT_EQ(real.makespan, fast.makespan);
    EXPECT_EQ(real_stats.p50(), fast.stats.p50());
    EXPECT_EQ(real_stats.p95(), fast.stats.p95());
    EXPECT_EQ(real_stats.p99(), fast.stats.p99());
    EXPECT_DOUBLE_EQ(real_stats.meanLatencyMs(),
                     fast.stats.meanLatencyMs());
    // The controller made identical decisions on both paths.
    EXPECT_EQ(ctrl.decisions().admitted, fast_decisions.admitted);
    EXPECT_EQ(ctrl.decisions().shed, fast_decisions.shed);
    EXPECT_EQ(ctrl.decisions().tierPredicted,
              fast_decisions.tierPredicted);
    ASSERT_GT(fast_decisions.tierPredicted, 0u); // cold tier exercised
}

} // namespace
} // namespace flashmem::serving
