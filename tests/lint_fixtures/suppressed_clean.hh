// Lint fixture: header-side suppression — the uninitialized scalar is
// justified, so the lint MUST exit 0 on this file.
#ifndef FLASHMEM_TESTS_LINT_FIXTURES_SUPPRESSED_CLEAN_HH
#define FLASHMEM_TESTS_LINT_FIXTURES_SUPPRESSED_CLEAN_HH

struct SuppressedConfig {
    // FMLINT(allow:uninitialized-member) fixture: always set by the factory
    int slots;
    int ready = 0;
};

#endif
