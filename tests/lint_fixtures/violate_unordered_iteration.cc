// Lint fixture: MUST trip no-unordered-iteration (and nothing else).
// A range-for over an unordered map appends to an ordered vector, so
// the emitted order depends on hash-table iteration order.
#include <string>
#include <unordered_map>
#include <vector>

std::vector<std::string>
dumpPlans(const std::unordered_map<int, std::string> &plans)
{
    std::vector<std::string> out;
    for (const auto &[id, plan] : plans) {
        out.push_back(plan);
    }
    return out;
}

int
countLong(const std::unordered_map<int, std::string> &plans)
{
    // Order-insensitive reduction over the same container: not a
    // finding; the check keys on ordered sinks in the body.
    int n = 0;
    for (const auto &[id, plan] : plans) {
        if (plan.size() > 8)
            ++n;
    }
    return n;
}
