// Lint fixture: MUST trip no-pointer-order (and nothing else).
// Ordering by raw pointer value injects allocation-order
// nondeterminism into tie-breaks.
#include <map>
#include <memory>

struct Job {
    int prio = 0;
};

std::map<Job *, int> byIdentity;   // ordered container, pointer key

bool
beforeByAddress(const Job &a, const Job &b)
{
    return (&a < &b);
}

bool
beforeBySmartIdentity(const std::shared_ptr<Job> &a,
                      const std::shared_ptr<Job> &b)
{
    return a.get() < b.get();
}
