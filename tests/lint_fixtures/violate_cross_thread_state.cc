// Fixture: cross-thread-state must flag ad-hoc lock-free shared
// state (std::atomic, atomic_* typedefs, volatile) and nothing else.
// Compiled never, linted always (tests/test_flashmem_lint.py).

#include <atomic>
#include <cstdint>
#include <mutex>

namespace fixture {

// VIOLATION: a bare atomic counter observed in scheduling order —
// exactly how thread-count dependence leaks into results.
std::atomic<std::uint64_t> raceCounter{0};

// VIOLATION: the C-style typedef is the same pattern.
std::atomic_flag spin = ATOMIC_FLAG_INIT;

// VIOLATION: volatile is not a synchronization primitive at all.
volatile int mailbox = 0;

// OK: mutex-guarded state merged in a deterministic order is the
// approved cross-thread pattern and must not be flagged.
struct Guarded {
    std::mutex mu;
    std::uint64_t count = 0;
    void
    bump()
    {
        std::lock_guard<std::mutex> lock(mu);
        ++count;
    }
};

} // namespace fixture
