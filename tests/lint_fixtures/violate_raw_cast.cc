// Fixture: no-raw-cast must flag reinterpret_cast and const_cast.
// Compiled never, linted always (tests/test_flashmem_lint.py).

#include <cstdint>
#include <cstring>
#include <ostream>

namespace fixture {

// VIOLATION: type punning a double through reinterpret_cast bakes the
// host's byte order and alignment into the serialized stream.
void writeRaw(std::ostream &os, double v)
{
    os.write(reinterpret_cast<const char *>(&v), sizeof v);
}

// VIOLATION: const_cast hides mutation from the determinism tests.
void scribble(const std::int64_t &slot)
{
    const_cast<std::int64_t &>(slot) = 0;
}

// OK: memcpy through a char buffer is the approved replacement and
// must not be flagged.
void writeSafe(std::ostream &os, double v)
{
    char buf[sizeof v];
    std::memcpy(buf, &v, sizeof buf);
    os.write(buf, sizeof buf);
}

// OK: static_cast is value conversion, not type punning.
std::int64_t narrow(double v) { return static_cast<std::int64_t>(v); }

} // namespace fixture
