// Lint fixture: suppressions below are invalid — one has no
// justification string, one names an unknown check.  Both MUST be
// reported as bad-suppression findings (always fatal).
#include <chrono>

long
unjustified()
{
    // FMLINT(allow:no-wall-clock)
    auto t0 = std::chrono::steady_clock::now();
    (void)t0;
    return 0;
}

long
unknownCheck()
{
    // FMLINT(allow:no-such-check) reason text present but check bogus
    auto t0 = std::chrono::steady_clock::now();
    (void)t0;
    return 0;
}
