// Lint fixture: MUST trip uninitialized-member (and nothing else).
// Aggregate config structs rely on zero-init discipline; a field
// someone forgets to set reads indeterminate garbage.
#ifndef FLASHMEM_TESTS_LINT_FIXTURES_VIOLATE_UNINITIALIZED_MEMBER_HH
#define FLASHMEM_TESTS_LINT_FIXTURES_VIOLATE_UNINITIALIZED_MEMBER_HH

#include <string>
#include <vector>

enum class FixtureMode { Off, On };

struct FixtureConfig {
    int budget;                    // finding: scalar, no initializer
    double rate;                   // finding: scalar, no initializer
    FixtureMode mode;              // finding: enum, no initializer
    const char *label;             // finding: pointer, no initializer
    int initialized = 3;           // ok: initialized
    bool flagged{false};           // ok: brace-initialized
    std::string name;              // ok: class type, default ctor
    std::vector<int> history;      // ok: class type, default ctor
};

struct FixtureWithCtor {
    // ok: a constructor owns member init; the aggregate rule is off.
    FixtureWithCtor(int v) : value(v) {}
    int value;
};

#endif
