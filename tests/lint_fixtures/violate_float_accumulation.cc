// Lint fixture: MUST trip float-accumulation-order (and nothing
// else).  A floating-point += inside a thread-pool task means the
// reduction result depends on task completion order.
#include "common/thread_pool.hh"

#include <vector>

double
sumParallel(const std::vector<double> &xs)
{
    double total = 0.0;
    flashmem::ThreadPool pool(4);
    for (double x : xs) {
        pool.submit([&total, x] { total += x; });
    }
    return total;
}

long
sumCounters(const std::vector<long> &xs)
{
    // Integer accumulation is exact and associative: not a finding.
    long count = 0;
    flashmem::ThreadPool pool(4);
    for (long x : xs) {
        pool.submit([&count, x] { count += x; });
    }
    return count;
}
