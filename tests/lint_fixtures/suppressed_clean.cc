// Lint fixture: every violation below carries an FMLINT suppression
// with a justification, so the lint MUST exit 0 on this file.
#include "common/thread_pool.hh"

#include <atomic>
#include <chrono>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

struct Tag {
    int v = 0;
};

std::vector<std::string>
dumpSuppressed(const std::unordered_map<int, std::string> &plans)
{
    std::vector<std::string> out;
    // FMLINT(allow:no-unordered-iteration) fixture: output re-sorted by caller
    for (const auto &[id, plan] : plans) {
        out.push_back(plan);
    }
    return out;
}

long
timedSuppressed()
{
    auto t0 = std::chrono::steady_clock::now(); // FMLINT(allow:no-wall-clock) fixture: timing only, never in results
    (void)t0;
    return 0;
}

// FMLINT(allow:no-pointer-order) fixture: identity map, order never observed
std::map<Tag *, int> identitySuppressed;

// FMLINT(allow:cross-thread-state) fixture: monotone latch, every writer publishes the same fact
std::atomic<bool> latchSuppressed{false};

void
punSuppressed(char *dst, double v)
{
    // FMLINT(allow:no-raw-cast) fixture: mmap'd scratch page, layout pinned by test
    *reinterpret_cast<double *>(dst) = v;
}

double
sumSuppressed(const std::vector<double> &xs)
{
    double total = 0.0;
    flashmem::ThreadPool pool(2);
    for (double x : xs) {
        // FMLINT(allow:float-accumulation-order) fixture: single task owns total
        pool.submit([&total, x] { total += x; });
    }
    return total;
}
