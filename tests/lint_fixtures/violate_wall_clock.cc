// Lint fixture: MUST trip no-wall-clock (and nothing else).
// Wall-clock reads and stdlib randomness outside the benchmark
// timing harness make results differ run to run.
#include <chrono>
#include <cstdlib>
#include <random>

long
jitterNs()
{
    auto now = std::chrono::steady_clock::now();
    (void)now;
    std::random_device rd;
    std::mt19937 gen(rd());
    return static_cast<long>(gen()) + std::rand();
}
