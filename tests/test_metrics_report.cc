/**
 * @file
 * Golden-string tests for the report renderers (metrics/report.hh):
 * exact ASCII-chart and quantile-chart output, including the
 * empty-series and single-point edge cases, and sampleTrace's
 * degenerate inputs. The renderers feed the committed bench logs, so
 * their output format is a compatibility surface — any drift should
 * be a conscious diff here, not a silent bench-log change.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "metrics/report.hh"

namespace flashmem::metrics {
namespace {

std::string
pad(int n)
{
    return std::string(static_cast<std::size_t>(n), ' ');
}

TEST(AsciiChart, EmptySeriesRendersPlaceholder)
{
    std::ostringstream os;
    renderAsciiChart(os, {}, 40, 8);
    EXPECT_EQ(os.str(), "(empty chart)\n");
}

TEST(AsciiChart, SinglePointAtOriginRendersPlaceholder)
{
    // One sample at t=0 gives a zero-width x axis; the renderer
    // degrades to the placeholder instead of dividing by zero.
    ChartSeries s;
    s.label = "flat";
    s.points = {{0.0, 100.0}};
    std::ostringstream os;
    renderAsciiChart(os, {s}, 40, 8);
    EXPECT_EQ(os.str(), "(empty chart)\n");
}

TEST(AsciiChart, TwoSeriesGolden)
{
    ChartSeries a;
    a.label = "ramp";
    a.glyph = '*';
    a.points = {{0.0, 0.0}, {1.0, 50.0}, {2.0, 100.0}};
    ChartSeries b;
    b.label = "flat";
    b.glyph = '+';
    b.points = {{0.0, 60.0}, {2.0, 60.0}};

    std::ostringstream os;
    renderAsciiChart(os, {a, b}, 40, 8);
    std::string expected =
        "100 MB\n"
        "  |" + pad(39) + "*\n" +
        "  |" + pad(40) + "\n" +
        "  |" + pad(40) + "\n" +
        "  |+" + pad(38) + "+\n" +
        "  |" + pad(19) + "*" + pad(20) + "\n" +
        "  |" + pad(40) + "\n" +
        "  |" + pad(40) + "\n" +
        "  |*" + pad(39) + "\n" +
        "  +" + std::string(40, '-') + "> 2.0 s\n" +
        "   * = ramp\n"
        "   + = flat\n";
    EXPECT_EQ(os.str(), expected);
}

TEST(QuantileChart, EmptyRowsRendersPlaceholder)
{
    std::ostringstream os;
    renderQuantileChart(os, {}, 40);
    EXPECT_EQ(os.str(), "(empty chart)\n");
}

TEST(QuantileChart, TwoRowsGolden)
{
    std::ostringstream os;
    renderQuantileChart(os,
                        {{"fifo", 10.0, 20.0, 40.0},
                         {"edf", 5.0, 8.0, 10.0}},
                        40);
    std::string expected =
        "  fifo |---------5---------9-------------------!|"
        "  p50 10.0  p95 20.0  p99 40.0 ms\n"
        "  edf  |----5--9-!------------------------------|"
        "  p50 5.0  p95 8.0  p99 10.0 ms\n"
        "        0" + pad(39) +
        "40.0 ms   (5=p50 9=p95 !=p99)\n";
    EXPECT_EQ(os.str(), expected);
}

TEST(SampleTrace, DegenerateInputsYieldNoPoints)
{
    TimeSeries empty;
    EXPECT_TRUE(sampleTrace(empty, 5).empty());

    // A single sample spans zero time: nothing to interpolate.
    TimeSeries single;
    single.record(0, 1048576.0);
    EXPECT_TRUE(sampleTrace(single, 5).empty());

    // points <= 1 cannot form a step axis.
    TimeSeries two;
    two.record(0, 1048576.0);
    two.record(seconds(2.0), 3.0 * 1048576.0);
    EXPECT_TRUE(sampleTrace(two, 1).empty());
    EXPECT_TRUE(sampleTrace(two, 0).empty());
}

TEST(SampleTrace, StepSeriesSamplesRightContinuously)
{
    TimeSeries t;
    t.record(0, 1048576.0);
    t.record(seconds(2.0), 3.0 * 1048576.0);
    auto pts = sampleTrace(t, 3);
    ASSERT_EQ(pts.size(), 3u);
    EXPECT_DOUBLE_EQ(pts[0].seconds, 0.0);
    EXPECT_DOUBLE_EQ(pts[0].megabytes, 1.0);
    EXPECT_DOUBLE_EQ(pts[1].seconds, 1.0);
    EXPECT_DOUBLE_EQ(pts[1].megabytes, 1.0); // step holds until 2 s
    EXPECT_DOUBLE_EQ(pts[2].seconds, 2.0);
    EXPECT_DOUBLE_EQ(pts[2].megabytes, 3.0);
}

} // namespace
} // namespace flashmem::metrics
