#!/usr/bin/env python3
"""Self-test for tools/flashmem_lint.py against the fixture corpus.

Each check is proven live: a deliberately-violating fixture must trip
exactly that check (at the expected granularity), and the suppressed
fixtures must silence every finding.  Invalid suppressions (missing
justification, unknown check name) must themselves be fatal.

Run directly or via ctest (flashmem_lint_selftest).
"""

import os
import subprocess
import sys
import unittest

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
LINT = os.path.join(REPO, "tools", "flashmem_lint.py")
FIXTURES = os.path.join(REPO, "tests", "lint_fixtures")


def run_lint(*args):
    proc = subprocess.run(
        [sys.executable, LINT, *args],
        capture_output=True, text=True, cwd=REPO)
    return proc.returncode, proc.stdout, proc.stderr


def fixture(name):
    return os.path.join(FIXTURES, name)


class ViolationFires(unittest.TestCase):
    """Each deliberately-violating fixture trips its check and only
    its check."""

    CASES = {
        "violate_unordered_iteration.cc":
            ("no-unordered-iteration", 1),
        "violate_wall_clock.cc": ("no-wall-clock", 4),
        "violate_pointer_order.cc": ("no-pointer-order", 3),
        "violate_uninitialized_member.hh":
            ("uninitialized-member", 4),
        "violate_float_accumulation.cc":
            ("float-accumulation-order", 1),
        "violate_raw_cast.cc": ("no-raw-cast", 2),
        "violate_cross_thread_state.cc": ("cross-thread-state", 3),
    }

    def test_each_check_fires(self):
        for name, (check, expected_count) in self.CASES.items():
            with self.subTest(fixture=name):
                rc, out, _ = run_lint(fixture(name))
                self.assertEqual(rc, 1,
                                 f"{name}: expected findings, got "
                                 f"rc=0\n{out}")
                lines = [ln for ln in out.splitlines()
                         if f"[{check}]" in ln]
                self.assertEqual(
                    len(lines), expected_count,
                    f"{name}: expected {expected_count} "
                    f"[{check}] findings\n{out}")
                other = [ln for ln in out.splitlines()
                         if "[" in ln and f"[{check}]" not in ln]
                self.assertEqual(
                    other, [],
                    f"{name}: unexpected extra findings\n{out}")

    def test_finding_carries_file_and_line(self):
        rc, out, _ = run_lint(fixture("violate_wall_clock.cc"))
        self.assertEqual(rc, 1)
        first = out.splitlines()[0]
        path, line, rest = first.split(":", 2)
        self.assertTrue(path.endswith("violate_wall_clock.cc"))
        self.assertTrue(line.isdigit() and int(line) > 0, first)
        self.assertIn("[no-wall-clock]", rest)


class SuppressionWorks(unittest.TestCase):
    def test_justified_suppressions_silence_all_findings(self):
        for name in ("suppressed_clean.cc", "suppressed_clean.hh"):
            with self.subTest(fixture=name):
                rc, out, err = run_lint(fixture(name))
                self.assertEqual(rc, 0,
                                 f"{name}: expected clean exit\n"
                                 f"{out}{err}")
                self.assertIn("0 finding(s)", err)

    def test_suppressed_findings_visible_in_verbose(self):
        rc, out, _ = run_lint(fixture("suppressed_clean.cc"), "-v")
        self.assertEqual(rc, 0)
        self.assertIn("suppressed [no-unordered-iteration]", out)
        self.assertIn("suppressed [no-wall-clock]", out)

    def test_missing_justification_is_fatal(self):
        rc, out, _ = run_lint(fixture("bad_suppression.cc"))
        self.assertEqual(rc, 1)
        self.assertIn("[bad-suppression]", out)
        self.assertIn("without a justification", out)

    def test_unknown_check_name_is_fatal(self):
        rc, out, _ = run_lint(fixture("bad_suppression.cc"))
        self.assertEqual(rc, 1)
        self.assertIn("unknown check name", out)

    def test_invalid_suppression_does_not_silence(self):
        # The underlying wall-clock findings must survive an invalid
        # suppression attempt.
        rc, out, _ = run_lint(fixture("bad_suppression.cc"))
        self.assertEqual(rc, 1)
        self.assertIn("[no-wall-clock]", out)


class CliBehaviour(unittest.TestCase):
    def test_list_checks(self):
        rc, out, _ = run_lint("--list-checks")
        self.assertEqual(rc, 0)
        for check in ("no-unordered-iteration", "no-wall-clock",
                      "no-pointer-order", "uninitialized-member",
                      "float-accumulation-order", "no-raw-cast",
                      "cross-thread-state"):
            self.assertIn(check, out)

    def test_check_subset_filters(self):
        rc, out, _ = run_lint(
            fixture("violate_wall_clock.cc"),
            "--checks", "no-pointer-order")
        self.assertEqual(rc, 0, out)

    def test_unknown_check_rejected(self):
        rc, _, err = run_lint(fixture("violate_wall_clock.cc"),
                              "--checks", "no-such-check")
        self.assertEqual(rc, 2)
        self.assertIn("unknown checks", err)

    def test_wallclock_whitelist(self):
        rc, out, _ = run_lint(
            fixture("violate_wall_clock.cc"),
            "--wallclock-whitelist", "tests/lint_fixtures/")
        self.assertEqual(rc, 0, out)

    def test_wallclock_deny_overrides_whitelist(self):
        """The deny list wins even when a whitelist entry covers the
        same path — this is how src/obs/ stays simulation-clock-only
        no matter how the whitelist evolves."""
        rc, out, _ = run_lint(
            fixture("violate_wall_clock.cc"),
            "--wallclock-whitelist", "tests/lint_fixtures/",
            "--wallclock-deny", "tests/lint_fixtures/")
        self.assertEqual(rc, 1, out)
        self.assertIn("[no-wall-clock]", out)

    def test_wallclock_default_deny_covers_obs(self):
        """A wall-clock read under src/obs/ must flag under the
        default deny list, even with a whitelist naming src/."""
        victim = os.path.join(REPO, "src", "obs",
                              "wallclock_probe_selftest.cc")
        try:
            with open(victim, "w", encoding="utf-8") as f:
                f.write("#include <chrono>\n"
                        "auto now() { return std::chrono::"
                        "system_clock::now(); }\n")
            rc, out, _ = run_lint(
                os.path.relpath(victim, REPO),
                "--wallclock-whitelist", "src/")
            self.assertEqual(rc, 1, out)
            self.assertIn("[no-wall-clock]", out)
        finally:
            os.unlink(victim)

    def test_exclude(self):
        rc, _, err = run_lint(FIXTURES, "--exclude", "lint_fixtures")
        self.assertEqual(rc, 2)
        self.assertIn("no files matched", err)


class WholeTreeGate(unittest.TestCase):
    def test_repo_tree_is_clean(self):
        """The same invocation ctest runs: zero unsuppressed findings
        over src/, bench/, tests/, tools/ (fixtures excluded)."""
        rc, out, err = run_lint("src", "bench", "tests", "tools",
                                "--exclude", "lint_fixtures")
        self.assertEqual(rc, 0,
                         f"tree has unsuppressed findings:\n{out}{err}")


if __name__ == "__main__":
    unittest.main(verbosity=2)
