/**
 * @file
 * Tests for the serving harness: arrival-trace generators (statistical
 * shape + determinism), CSV/JSONL replay round-trips, the fast
 * request-level simulator (exact hand-checked timelines, SLO
 * admission, instability abort), capacity sweeps (monotonicity,
 * thread-count determinism), and service calibration against the real
 * FlashMem planner.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "core/flashmem.hh"
#include "serving/sweep.hh"

namespace flashmem::serving {
namespace {

using models::ModelId;
using multidnn::DeadlinePolicy;
using multidnn::FifoPolicy;
using multidnn::ModelRequest;
using multidnn::SjfPolicy;

ModelMix
simpleMix()
{
    ModelMix mix;
    mix.entries = {
        {ModelId::ResNet50, 3.0, 0, 0},
        {ModelId::ViT, 1.0, 0, 0},
    };
    return mix;
}

/** Hand-written service table: ResNet 10 ms, ViT 40 ms; degraded
 * plans run 50% longer at half the budget. */
ServiceTable
handTable()
{
    ServiceTable table;
    table[ModelId::ResNet50] = {milliseconds(10), milliseconds(15),
                                mib(200), mib(120), mib(512),
                                mib(256)};
    table[ModelId::ViT] = {milliseconds(40), milliseconds(60),
                           mib(300), mib(180), mib(512), mib(256)};
    return table;
}

// -------------------------------------------------------- generators

TEST(TraceGen, PoissonIsSeededAndMatchesRate)
{
    auto mix = simpleMix();
    auto a = poissonTrace(mix, /*qps=*/100.0, 20000, /*seed=*/7);
    auto b = poissonTrace(mix, 100.0, 20000, 7);
    ASSERT_EQ(a.size(), 20000u);
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].arrival, b[i].arrival);
        EXPECT_EQ(a[i].model, b[i].model);
    }
    // Arrivals are nondecreasing and the mean inter-arrival matches
    // 1/qps within a few percent at n=20000.
    for (std::size_t i = 1; i < a.size(); ++i)
        EXPECT_GE(a[i].arrival, a[i - 1].arrival);
    double mean_gap_s =
        toSeconds(a.back().arrival) / static_cast<double>(a.size());
    EXPECT_NEAR(mean_gap_s, 0.01, 0.001);
    // The 3:1 mix shows up in the sampled models.
    auto resnet = static_cast<double>(std::count_if(
        a.begin(), a.end(), [](const ModelRequest &r) {
            return r.model == ModelId::ResNet50;
        }));
    EXPECT_NEAR(resnet / static_cast<double>(a.size()), 0.75, 0.02);
}

TEST(TraceGen, PoissonStampsMixBoundsAndPriorities)
{
    ModelMix mix;
    mix.entries = {{ModelId::ResNet50, 1.0, milliseconds(30), 2}};
    auto t = poissonTrace(mix, 50.0, 100, 1);
    for (const auto &r : t) {
        EXPECT_EQ(r.latencyBound, milliseconds(30));
        EXPECT_EQ(r.priority, 2);
        EXPECT_EQ(r.deadline(), r.arrival + milliseconds(30));
    }
}

TEST(TraceGen, MmppIsBurstierThanPoisson)
{
    auto mix = simpleMix();
    MmppParams mm;
    mm.qpsLow = 20.0;
    mm.qpsHigh = 400.0;
    mm.meanDwell = milliseconds(200);
    auto bursty = mmppTrace(mix, mm, 20000, 11);
    auto smooth = poissonTrace(mix, 100.0, 20000, 11);
    ASSERT_EQ(bursty.size(), 20000u);
    for (std::size_t i = 1; i < bursty.size(); ++i)
        EXPECT_GE(bursty[i].arrival, bursty[i - 1].arrival);

    // Index of dispersion of counts over fixed windows: ~1 for
    // Poisson, well above for the modulated process (deterministic
    // seeds, so the margin is stable).
    auto dispersion = [](const std::vector<ModelRequest> &t,
                         SimTime window) {
        std::vector<double> counts;
        std::size_t i = 0;
        for (SimTime start = 0; start < t.back().arrival;
             start += window) {
            double c = 0;
            while (i < t.size() && t[i].arrival < start + window) {
                ++c;
                ++i;
            }
            counts.push_back(c);
        }
        RunningStat st;
        for (double c : counts)
            st.add(c);
        return st.mean() > 0 ? st.variance() / st.mean() : 0.0;
    };
    double d_bursty = dispersion(bursty, milliseconds(100));
    double d_smooth = dispersion(smooth, milliseconds(100));
    EXPECT_LT(d_smooth, 2.0);
    EXPECT_GT(d_bursty, 3.0 * d_smooth);
}

TEST(TraceGen, DiurnalModulatesTheRate)
{
    auto mix = simpleMix();
    DiurnalParams dp;
    dp.baseQps = 100.0;
    dp.amplitude = 0.8;
    dp.period = seconds(20);
    auto t = diurnalTrace(mix, dp, 20000, 13);
    for (std::size_t i = 1; i < t.size(); ++i)
        EXPECT_GE(t[i].arrival, t[i - 1].arrival);
    // First half-period (sin > 0) sees far more arrivals than the
    // second (sin < 0).
    auto count_in = [&](SimTime lo, SimTime hi) {
        return std::count_if(t.begin(), t.end(),
                             [&](const ModelRequest &r) {
                                 return r.arrival >= lo &&
                                        r.arrival < hi;
                             });
    };
    auto up = count_in(0, seconds(10));
    auto down = count_in(seconds(10), seconds(20));
    EXPECT_GT(up, 2 * down);
}

TEST(TraceGen, ClosedLoopRespectsConcurrencyAndService)
{
    ModelMix mix;
    mix.entries = {{ModelId::ResNet50, 1.0, 0, 0}};
    std::map<ModelId, SimTime> service{
        {ModelId::ResNet50, milliseconds(10)}};
    ClosedLoopParams cl;
    cl.users = 1;
    cl.meanThink = milliseconds(5);
    auto t = closedLoopTrace(mix, cl, service, 500, 17);
    ASSERT_EQ(t.size(), 500u);
    // A single user cannot issue faster than service completes: every
    // inter-arrival is at least the service time.
    for (std::size_t i = 1; i < t.size(); ++i)
        EXPECT_GE(t[i].arrival - t[i - 1].arrival, milliseconds(10));

    // With K users, at most K requests can ever be in flight: the
    // arrival rate stays below K / service.
    cl.users = 4;
    cl.meanThink = 0;
    auto t4 = closedLoopTrace(mix, cl, service, 2000, 17);
    double qps = static_cast<double>(t4.size()) /
                 toSeconds(t4.back().arrival);
    EXPECT_LE(qps, 4.0 / 0.010 * 1.05);
}

// ------------------------------------------------------------ replay

TEST(TraceReplay, CsvRoundTripsExactly)
{
    ModelMix mix;
    mix.entries = {{ModelId::ResNet50, 2.0, milliseconds(25), 1},
                   {ModelId::GPTNeoS, 1.0, 0, -2}};
    auto trace = poissonTrace(mix, 80.0, 200, 23);

    std::stringstream ss;
    writeCsvTrace(ss, trace);
    auto parsed = parseCsvTrace(ss);
    ASSERT_EQ(parsed.size(), trace.size());
    for (std::size_t i = 0; i < trace.size(); ++i) {
        EXPECT_EQ(parsed[i].arrival, trace[i].arrival);
        EXPECT_EQ(parsed[i].model, trace[i].model);
        EXPECT_EQ(parsed[i].priority, trace[i].priority);
        EXPECT_EQ(parsed[i].latencyBound, trace[i].latencyBound);
    }
}

TEST(TraceReplay, JsonlRoundTripsExactly)
{
    ModelMix mix;
    mix.entries = {{ModelId::ViT, 1.0, milliseconds(50), 3}};
    auto trace = poissonTrace(mix, 40.0, 100, 29);

    std::stringstream ss;
    writeJsonlTrace(ss, trace);
    auto parsed = parseJsonlTrace(ss);
    ASSERT_EQ(parsed.size(), trace.size());
    for (std::size_t i = 0; i < trace.size(); ++i) {
        EXPECT_EQ(parsed[i].arrival, trace[i].arrival);
        EXPECT_EQ(parsed[i].model, trace[i].model);
        EXPECT_EQ(parsed[i].priority, trace[i].priority);
        EXPECT_EQ(parsed[i].latencyBound, trace[i].latencyBound);
    }
}

TEST(TraceReplay, JsonlDefaultsOptionalFields)
{
    std::stringstream ss;
    ss << "{\"arrival_ns\": 1000, \"model\": \"ResNet50\"}\n";
    auto parsed = parseJsonlTrace(ss);
    ASSERT_EQ(parsed.size(), 1u);
    EXPECT_EQ(parsed[0].arrival, 1000);
    EXPECT_EQ(parsed[0].model, ModelId::ResNet50);
    EXPECT_EQ(parsed[0].priority, 0);
    EXPECT_EQ(parsed[0].latencyBound, 0);
}

// ----------------------------------------------------- serving stats

TEST(ServingStats, CountsGoodputShedAndViolations)
{
    ServingStats s;
    s.recordCompletion(milliseconds(10), 0, /*met=*/true, false);
    s.recordCompletion(milliseconds(90), milliseconds(60),
                       /*met=*/false, /*degraded=*/true);
    s.recordShed();
    EXPECT_EQ(s.submitted(), 3u);
    EXPECT_EQ(s.completed(), 2u);
    EXPECT_EQ(s.shedCount(), 1u);
    EXPECT_EQ(s.degradedCount(), 1u);
    EXPECT_EQ(s.goodput(), 1u);
    EXPECT_EQ(s.sloViolations(), 1u);
    EXPECT_DOUBLE_EQ(s.goodputRate(), 1.0 / 3.0);
    EXPECT_DOUBLE_EQ(s.shedRate(), 1.0 / 3.0);
    // Small-n quantiles are exact order statistics.
    EXPECT_EQ(s.p50(), milliseconds(10));
    EXPECT_EQ(s.p99(), milliseconds(90));
}

// ------------------------------------------------------ fast simulator

TEST(ServingSim, FifoTimelineIsExact)
{
    // Two ResNet requests 1 ms apart, 10 ms service: the second queues
    // 9 ms behind the first.
    std::vector<ModelRequest> trace{
        {ModelId::ResNet50, 0, 0, 0},
        {ModelId::ResNet50, milliseconds(1), 0, 0},
    };
    auto out = simulateServing(trace, FifoPolicy{}, handTable());
    EXPECT_FALSE(out.unstable);
    EXPECT_EQ(out.submitted, 2u);
    EXPECT_EQ(out.stats.completed(), 2u);
    EXPECT_EQ(out.makespan, milliseconds(20));
    // Latencies 10 ms and 19 ms; small-n quantiles are exact.
    EXPECT_EQ(out.stats.p50(), milliseconds(10));
    EXPECT_EQ(out.stats.p99(), milliseconds(19));
    EXPECT_EQ(out.peakMemory, mib(200));
}

TEST(ServingSim, SjfReordersByServiceTime)
{
    // ViT (40 ms) then ResNet (10 ms), both in queue when the device
    // frees: SJF runs the ResNet first once the initial ViT dispatch
    // completes.
    std::vector<ModelRequest> trace{
        {ModelId::ViT, 0, 0, 0},
        {ModelId::ViT, milliseconds(1), 0, 0},
        {ModelId::ResNet50, milliseconds(2), 0, 0},
    };
    auto fifo = simulateServing(trace, FifoPolicy{}, handTable());
    auto sjf = simulateServing(trace, SjfPolicy{}, handTable());
    EXPECT_EQ(fifo.makespan, sjf.makespan);
    // FIFO: ResNet waits 2 ViTs (ends 90 ms); SJF: ResNet ends 50 ms.
    EXPECT_EQ(fifo.stats.p99(), milliseconds(88));
    EXPECT_EQ(sjf.stats.p99(), milliseconds(89));
    EXPECT_LT(sjf.stats.meanLatencyMs(), fifo.stats.meanLatencyMs());
}

TEST(ServingSim, DeadlineShedsDoomedRequests)
{
    // A 40 ms ViT occupies the device; a ResNet with a 15 ms bound
    // arrives just after and is doomed (even dispatched immediately it
    // would finish at ~50 ms). Deadline admission sheds it; FIFO blows
    // its SLO instead.
    std::vector<ModelRequest> trace{
        {ModelId::ViT, 0, 0, 0},
        {ModelId::ResNet50, milliseconds(1), 0, milliseconds(15)},
    };
    auto fifo = simulateServing(trace, FifoPolicy{}, handTable());
    EXPECT_EQ(fifo.stats.completed(), 2u);
    EXPECT_EQ(fifo.stats.sloViolations(), 1u);
    EXPECT_EQ(fifo.stats.goodput(), 1u);

    auto dl = simulateServing(trace, DeadlinePolicy{}, handTable());
    EXPECT_EQ(dl.stats.completed(), 1u);
    EXPECT_EQ(dl.stats.shedCount(), 1u);
    EXPECT_EQ(dl.stats.sloViolations(), 0u);
    // Shed requests do not count toward goodput.
    EXPECT_EQ(dl.stats.goodput(), 1u);
    EXPECT_DOUBLE_EQ(dl.stats.goodputRate(), 0.5);
}

TEST(ServingSim, DeadlineAdmitsFeasibleBoundedRequests)
{
    // Bound comfortably above queue wait + service: nothing is shed.
    std::vector<ModelRequest> trace{
        {ModelId::ViT, 0, 0, 0},
        {ModelId::ResNet50, milliseconds(1), 0, milliseconds(80)},
    };
    auto dl = simulateServing(trace, DeadlinePolicy{}, handTable());
    EXPECT_EQ(dl.stats.completed(), 2u);
    EXPECT_EQ(dl.stats.shedCount(), 0u);
    EXPECT_EQ(dl.stats.sloViolations(), 0u);
}

TEST(ServingSim, DegradeModeRunsDoomedRequestsAtDegradedBudget)
{
    std::vector<ModelRequest> trace{
        {ModelId::ViT, 0, 0, 0},
        {ModelId::ResNet50, milliseconds(1), 0, milliseconds(15)},
    };
    auto out = simulateServing(
        trace, DeadlinePolicy{DeadlinePolicy::Overload::Degrade},
        handTable());
    EXPECT_EQ(out.stats.completed(), 2u);
    EXPECT_EQ(out.stats.shedCount(), 0u);
    EXPECT_EQ(out.stats.degradedCount(), 1u);
    // The degraded ResNet runs its 15 ms degraded service: completes
    // at 40 + 15 = 55 ms (latency 54 ms), violating its bound — kept,
    // not dropped.
    EXPECT_EQ(out.stats.sloViolations(), 1u);
    EXPECT_EQ(out.makespan, milliseconds(55));
}

TEST(ServingSim, EdfOrdersByDeadline)
{
    // Two bounded requests ready together; the later-arrived one has
    // the earlier absolute deadline and must run first under EDF.
    std::vector<ModelRequest> trace{
        {ModelId::ViT, 0, 0, 0},
        {ModelId::ResNet50, milliseconds(1), 0, milliseconds(200)},
        {ModelId::ResNet50, milliseconds(2), 0, milliseconds(60)},
    };
    auto out = simulateServing(trace, DeadlinePolicy{}, handTable());
    EXPECT_EQ(out.stats.completed(), 3u);
    EXPECT_EQ(out.stats.sloViolations(), 0u);
    // EDF: the 60 ms-bound request runs right after the ViT (ends
    // 50 ms), the 200 ms-bound one after it (ends 60 ms). Under FIFO
    // the tight one would end at 60 ms and still meet... so check the
    // makespan-invariant ordering through per-request latencies: p99
    // is the 200 ms-bound request's 59 ms latency.
    EXPECT_EQ(out.stats.p99(), milliseconds(59));
}

TEST(ServingSim, TwoDeviceTimelineIsExact)
{
    // Two ResNet requests 1 ms apart on two devices: no queueing at
    // all — the second dispatches on device 1 at its arrival.
    std::vector<ModelRequest> trace{
        {ModelId::ResNet50, 0, 0, 0},
        {ModelId::ResNet50, milliseconds(1), 0, 0},
    };
    ServingSimParams params;
    params.cluster.deviceCount = 2;
    auto out = simulateServing(trace, FifoPolicy{}, handTable(),
                               params);
    EXPECT_EQ(out.stats.completed(), 2u);
    EXPECT_EQ(out.makespan, milliseconds(11));
    // Latencies are both the bare 10 ms service.
    EXPECT_EQ(out.stats.p50(), milliseconds(10));
    EXPECT_EQ(out.stats.p99(), milliseconds(10));
    ASSERT_EQ(out.devices.size(), 2u);
    EXPECT_EQ(out.devices[0].dispatched, 1u);
    EXPECT_EQ(out.devices[1].dispatched, 1u);
    EXPECT_EQ(out.devices[0].peakMemory, mib(200));
}

/** Hand table with a nonzero init phase: ResNet 10 ms service of
 * which 4 ms is preload DMA; ViT 40 ms of which 10 ms is preload. */
ServiceTable
overlapTable()
{
    auto table = handTable();
    table[ModelId::ResNet50].initService = milliseconds(4);
    table[ModelId::ResNet50].degradedInitService = milliseconds(4);
    table[ModelId::ViT].initService = milliseconds(10);
    table[ModelId::ViT].degradedInitService = milliseconds(10);
    return table;
}

TEST(ServingSim, OverlapTimelineIsExact)
{
    // Three back-to-back ResNets (10 ms service, 4 ms init) on one
    // device with cross-request overlap:
    //   r0: preload [0,4), compute [4,10)
    //   r1: preload [4,8) (DMA queue frees), compute [10,16)
    //   r2: dispatched at r0's completion (pipeline depth 2),
    //       preload [10,14), compute [16,22).
    std::vector<ModelRequest> trace{
        {ModelId::ResNet50, 0, 0, 0},
        {ModelId::ResNet50, 0, 0, 0},
        {ModelId::ResNet50, 0, 0, 0},
    };
    auto serial = simulateServing(trace, FifoPolicy{},
                                  overlapTable());
    EXPECT_EQ(serial.makespan, milliseconds(30));

    ServingSimParams params;
    params.cluster.overlapInitWithExec = true;
    auto out = simulateServing(trace, FifoPolicy{}, overlapTable(),
                               params);
    EXPECT_EQ(out.stats.completed(), 3u);
    EXPECT_EQ(out.makespan, milliseconds(22));
    // Latencies 10 / 16 / 22 ms (arrivals at 0).
    EXPECT_EQ(out.stats.p50(), milliseconds(16));
    EXPECT_EQ(out.stats.p99(), milliseconds(22));
    // The DMA queue carried all three 4 ms preloads.
    ASSERT_EQ(out.devices.size(), 1u);
    EXPECT_EQ(out.devices[0].dmaBusyTime, milliseconds(12));
    EXPECT_EQ(out.devices[0].computeBusyTime, milliseconds(18));
}

TEST(ServingSim, PerDeviceTablesDriveDispatchTimes)
{
    // Heterogeneous per-device calibration: device 1's ResNet runs
    // twice as slow. Two simultaneous arrivals land on devices 0 and
    // 1; the second request's latency follows device 1's table.
    ClusterServiceTable tables = replicateServices(handTable(), 2);
    tables[1][ModelId::ResNet50].service = milliseconds(20);
    std::vector<ModelRequest> trace{
        {ModelId::ResNet50, 0, 0, 0},
        {ModelId::ResNet50, 0, 0, 0},
    };
    ServingSimParams params;
    params.cluster.deviceCount = 2;
    auto out = simulateServing(trace, FifoPolicy{}, tables, params);
    EXPECT_EQ(out.stats.completed(), 2u);
    EXPECT_EQ(out.stats.p50(), milliseconds(10)); // device 0
    EXPECT_EQ(out.stats.p99(), milliseconds(20)); // device 1
    EXPECT_EQ(out.makespan, milliseconds(20));
}

TEST(ServingSim, OverloadAbortsAsUnstable)
{
    // 10x capacity with a tiny ready limit: the backlog explodes and
    // the run aborts as unstable.
    ModelMix mix;
    mix.entries = {{ModelId::ViT, 1.0, 0, 0}};
    auto trace = poissonTrace(mix, 250.0, 5000, 3);
    ServingSimParams params;
    params.readyLimit = 64;
    auto out = simulateServing(trace, FifoPolicy{}, handTable(),
                               params);
    EXPECT_TRUE(out.unstable);
    EXPECT_LT(out.stats.completed(), trace.size());
}

TEST(ServingSim, FromOutcomeMatchesOutcomeAccounting)
{
    std::vector<ModelRequest> trace{
        {ModelId::ViT, 0, 0, 0},
        {ModelId::ResNet50, milliseconds(1), 0, milliseconds(15)},
    };
    auto out = simulateServing(trace, DeadlinePolicy{}, handTable());
    multidnn::ScheduleOutcome sched;
    core::RunResult r;
    r.arrival = 0;
    r.start = 0;
    r.end = milliseconds(40);
    sched.runs.push_back(r);
    sched.shed.push_back({1, ModelId::ResNet50, milliseconds(1),
                          milliseconds(15), milliseconds(40)});
    auto stats = ServingStats::fromOutcome(sched);
    EXPECT_EQ(stats.completed(), out.stats.completed());
    EXPECT_EQ(stats.shedCount(), out.stats.shedCount());
    EXPECT_EQ(stats.goodput(), out.stats.goodput());
    EXPECT_EQ(stats.p99(), out.stats.p99());
}

// ----------------------------------------------------------- sweeps

TEST(Sweep, FindsTheCapacityKnee)
{
    // Single 10 ms model: capacity is 100 QPS. The knee must land
    // well below 100 (queueing inflates p99 near saturation) but
    // above a trivial floor.
    ModelMix mix;
    mix.entries = {{ModelId::ResNet50, 1.0, milliseconds(100), 0}};
    SweepParams sp;
    sp.loQps = 2.0;
    sp.hiQps = 512.0;
    sp.requestsPerProbe = 20000;
    sp.seed = 5;
    sp.slo.p99Bound = milliseconds(100);
    sp.slo.minGoodput = 0.95;
    auto res = findMaxSustainableQps(mix, FifoPolicy{}, handTable(),
                                     sp);
    EXPECT_GT(res.maxSustainableQps, 10.0);
    EXPECT_LT(res.maxSustainableQps, 100.0);
    EXPECT_GE(res.probes.size(), 3u);

    // A model twice as slow sustains strictly less.
    ServiceTable slow = handTable();
    slow[ModelId::ResNet50].service = milliseconds(20);
    auto res_slow = findMaxSustainableQps(mix, FifoPolicy{}, slow,
                                          sp);
    EXPECT_LT(res_slow.maxSustainableQps, res.maxSustainableQps);
}

TEST(Sweep, ThreadPoolDoesNotChangeTheResult)
{
    ModelMix mix;
    mix.entries = {{ModelId::ResNet50, 2.0, milliseconds(80), 0},
                   {ModelId::ViT, 1.0, milliseconds(250), 0}};
    SweepParams sp;
    sp.loQps = 2.0;
    sp.hiQps = 256.0;
    sp.requestsPerProbe = 10000;
    sp.seed = 9;
    sp.slo.p99Bound = milliseconds(250);
    auto serial = findMaxSustainableQps(
        mix, DeadlinePolicy{}, handTable(), sp, nullptr);
    ThreadPool pool(4);
    auto parallel = findMaxSustainableQps(
        mix, DeadlinePolicy{}, handTable(), sp, &pool);
    EXPECT_EQ(serial.maxSustainableQps, parallel.maxSustainableQps);
    ASSERT_EQ(serial.probes.size(), parallel.probes.size());
    for (std::size_t i = 0; i < serial.probes.size(); ++i) {
        EXPECT_EQ(serial.probes[i].qps, parallel.probes[i].qps);
        EXPECT_EQ(serial.probes[i].sustainable,
                  parallel.probes[i].sustainable);
        EXPECT_EQ(serial.probes[i].p99Ms, parallel.probes[i].p99Ms);
    }
}

TEST(Sweep, HopelessSloYieldsZero)
{
    // A bound below the bare service time can never be met.
    ModelMix mix;
    mix.entries = {{ModelId::ViT, 1.0, milliseconds(5), 0}};
    SweepParams sp;
    sp.loQps = 1.0;
    sp.hiQps = 64.0;
    sp.requestsPerProbe = 2000;
    sp.slo.p99Bound = milliseconds(5);
    auto res = findMaxSustainableQps(mix, FifoPolicy{}, handTable(),
                                     sp);
    EXPECT_EQ(res.maxSustainableQps, 0.0);
}

// ------------------------------------------------------- calibration

TEST(Calibration, MeasuresRealPlansAtBothBudgets)
{
    core::FlashMem fm(gpusim::DeviceProfile::onePlus12());
    auto table = calibrateServices(fm, {ModelId::ResNet50},
                                   /*degrade_budget_fraction=*/0.25);
    ASSERT_EQ(table.size(), 1u);
    const auto &p = table.at(ModelId::ResNet50);
    EXPECT_GT(p.service, 0);
    EXPECT_GT(p.degradedService, 0);
    EXPECT_GT(p.peakBytes, 0u);
    EXPECT_LT(p.degradedPlanBudget, p.planBudget);
    // The degraded plan was solved under a quarter of the budget,
    // quantized/clamped exactly as the EventScheduler's degraded
    // dispatch would be (shared quantizeBudgetShare rule).
    EXPECT_EQ(p.degradedPlanBudget,
              multidnn::quantizeBudgetShare(
                  fm.options().opg.mPeak / 4,
                  multidnn::SchedulerConfig{},
                  fm.options().opg.chunkBytes,
                  fm.options().opg.mPeak));
    // Cross-check the full-budget service against a direct run.
    auto g = models::buildModel(ModelId::ResNet50);
    auto compiled = fm.compile(g);
    gpusim::GpuSimulator sim(fm.device());
    auto r = fm.execute(sim, compiled, 0);
    EXPECT_EQ(p.service, r.integratedLatency());

    // The estimates view feeds the closed-loop generator.
    auto est = serviceEstimates(table);
    EXPECT_EQ(est.at(ModelId::ResNet50), p.service);
}

TEST(Calibration, FastSimulatorCrossValidatesAgainstEventScheduler)
{
    // The fast request-level simulator claims to mirror the real
    // EventScheduler's event loop exactly; hold it to that. Same
    // generated trace, same policy, services calibrated from the same
    // FlashMem: dispatch count, shed count, goodput, and every
    // per-request (start, end) must agree — the real scheduler's
    // executions are start-time invariant, so calibrated service
    // times reproduce its timeline.
    core::FlashMem fm(gpusim::DeviceProfile::onePlus12());
    ModelMix mix;
    mix.entries = {{ModelId::ResNet50, 2.0, milliseconds(150), 0},
                   {ModelId::DepthAnythingS, 1.0, milliseconds(400),
                    0}};
    auto services = calibrateServices(fm, mix.distinctModels());

    // ~2x the mix capacity, so queues build and admission sheds.
    auto trace = poissonTrace(mix, 30.0, 30, /*seed=*/41);
    multidnn::DeadlinePolicy policy;
    auto fast = simulateServing(trace, policy, services);

    multidnn::EventScheduler sched(fm);
    auto real = sched.run(trace, policy);

    EXPECT_EQ(real.runs.size(), fast.stats.completed());
    EXPECT_EQ(real.shed.size(), fast.stats.shedCount());
    EXPECT_EQ(real.goodput(), fast.stats.goodput());
    EXPECT_EQ(real.makespan, fast.makespan);
    ASSERT_FALSE(real.runs.empty());
    ASSERT_GT(fast.stats.shedCount(), 0u); // contention exercised
}

TEST(Calibration, FastSimulatorCrossValidatesAtScale)
{
    // The tens-of-requests cross-validation above could hide rare
    // divergence; drive thousands of requests through both paths at
    // 2x overload and hold them to *exact* agreement — counts,
    // makespan, goodput, and the full streaming-percentile state
    // (the P² estimators are pure functions of the observation
    // order, so matching p50/p95/p99 bit for bit means the two
    // paths produced identical per-request latencies in identical
    // order).
    core::FlashMem fm(gpusim::DeviceProfile::onePlus12());
    ModelMix mix;
    mix.entries = {{ModelId::ResNet50, 2.0, milliseconds(150), 0},
                   {ModelId::DepthAnythingS, 1.0, milliseconds(400),
                    0}};
    auto services = calibrateServices(fm, mix.distinctModels());

    auto trace = poissonTrace(mix, 30.0, 2500, /*seed=*/43);
    multidnn::DeadlinePolicy policy;
    ServingSimParams params;
    params.readyLimit = 0; // the real path never aborts
    auto fast = simulateServing(trace, policy, services, params);

    multidnn::EventScheduler sched(fm);
    auto real = sched.run(trace, policy);
    auto real_stats = ServingStats::fromOutcome(real);

    ASSERT_GT(real.runs.size(), 1000u);
    ASSERT_GT(real.shed.size(), 100u); // overload exercised
    EXPECT_EQ(real.runs.size(), fast.stats.completed());
    EXPECT_EQ(real.shed.size(), fast.stats.shedCount());
    EXPECT_EQ(real.goodput(), fast.stats.goodput());
    EXPECT_EQ(real.makespan, fast.makespan);
    EXPECT_EQ(real_stats.p50(), fast.stats.p50());
    EXPECT_EQ(real_stats.p95(), fast.stats.p95());
    EXPECT_EQ(real_stats.p99(), fast.stats.p99());
    EXPECT_DOUBLE_EQ(real_stats.meanLatencyMs(),
                     fast.stats.meanLatencyMs());
}

TEST(Calibration, ShardedFastSimCrossValidatesAgainstEventScheduler)
{
    // The N-device loop must mirror exactly too: same trace, same
    // policy, two devices, overload. Placement, admission, and
    // per-request timelines all agree because both paths run the
    // shared cluster event loop over the same calibrated times.
    core::FlashMem fm(gpusim::DeviceProfile::onePlus12());
    ModelMix mix;
    mix.entries = {{ModelId::ResNet50, 2.0, milliseconds(150), 0},
                   {ModelId::DepthAnythingS, 1.0, milliseconds(400),
                    0}};
    auto services = calibrateServices(fm, mix.distinctModels());

    auto trace = poissonTrace(mix, 60.0, 600, /*seed=*/47);
    multidnn::DeadlinePolicy policy;
    ServingSimParams params;
    params.readyLimit = 0;
    params.cluster.deviceCount = 2;
    auto fast = simulateServing(trace, policy, services, params);

    multidnn::SchedulerConfig cfg;
    cfg.cluster.deviceCount = 2;
    multidnn::EventScheduler sched(fm, cfg);
    auto real = sched.run(trace, policy);
    auto real_stats = ServingStats::fromOutcome(real);

    ASSERT_GT(fast.stats.shedCount(), 0u);
    EXPECT_EQ(real.runs.size(), fast.stats.completed());
    EXPECT_EQ(real.shed.size(), fast.stats.shedCount());
    EXPECT_EQ(real.makespan, fast.makespan);
    EXPECT_EQ(real_stats.p50(), fast.stats.p50());
    EXPECT_EQ(real_stats.p95(), fast.stats.p95());
    EXPECT_EQ(real_stats.p99(), fast.stats.p99());
    // Both devices did work, and the paths agree per device.
    ASSERT_EQ(real.devices.size(), 2u);
    ASSERT_EQ(fast.devices.size(), 2u);
    for (int d = 0; d < 2; ++d) {
        EXPECT_GT(real.devices[d].dispatched, 0u);
        EXPECT_EQ(real.devices[d].dispatched,
                  fast.devices[d].dispatched);
        EXPECT_EQ(real.devices[d].computeBusyTime,
                  fast.devices[d].computeBusyTime);
        EXPECT_EQ(real.devices[d].dmaBusyTime,
                  fast.devices[d].dmaBusyTime);
    }
}

TEST(Calibration, OverlapCrossValidatesAgainstEventScheduler)
{
    // Cross-request overlap: the real scheduler places runs with its
    // measured solo profiles, the fast path with the calibrated
    // table — both through DeviceCluster::planTimes. Solo executions
    // are deterministic, so the two must agree exactly.
    core::FlashMem fm(gpusim::DeviceProfile::onePlus12());
    ModelMix mix;
    mix.entries = {{ModelId::GPTNeoS, 1.0, 0, 0},
                   {ModelId::ResNet50, 1.0, 0, 0}};
    auto services = calibrateServices(fm, mix.distinctModels());
    ASSERT_GT(services.at(ModelId::GPTNeoS).initService, 0);

    auto trace = poissonTrace(mix, 12.0, 40, /*seed=*/53);
    multidnn::FifoPolicy policy;
    ServingSimParams params;
    params.readyLimit = 0;
    params.cluster.overlapInitWithExec = true;
    auto fast = simulateServing(trace, policy, services, params);

    multidnn::SchedulerConfig cfg;
    cfg.cluster.overlapInitWithExec = true;
    multidnn::EventScheduler sched(fm, cfg);
    auto real = sched.run(trace, policy);
    auto real_stats = ServingStats::fromOutcome(real);

    EXPECT_EQ(real.runs.size(), fast.stats.completed());
    EXPECT_EQ(real.makespan, fast.makespan);
    EXPECT_EQ(real_stats.p50(), fast.stats.p50());
    EXPECT_EQ(real_stats.p99(), fast.stats.p99());
    // Overlap actually engaged: some run's preload started before
    // its predecessor's completion.
    bool overlapped = false;
    for (std::size_t i = 1; i < real.runs.size(); ++i)
        overlapped |= real.runs[i].start < real.runs[i - 1].end;
    EXPECT_TRUE(overlapped);
}

// ------------------------------------------------- fault tolerance

TEST(FaultServing, RetryAfterFailoverStillMeetsBoundAndCountsGoodput)
{
    // A request that fails once but can still make its deadline after
    // the failover completes within bound and counts toward goodput.
    std::vector<ModelRequest> trace{
        {ModelId::ResNet50, 0, 0, milliseconds(100)}};
    ServingSimParams params;
    params.cluster.deviceCount = 2;
    params.faults = multidnn::singleCrash(0, milliseconds(2));
    auto out =
        simulateServing(trace, DeadlinePolicy{}, handTable(), params);

    EXPECT_EQ(out.stats.completed(), 1u);
    EXPECT_EQ(out.stats.shedCount(), 0u);
    EXPECT_EQ(out.stats.goodput(), 1u);
    EXPECT_EQ(out.faults.crashes, 1);
    EXPECT_EQ(out.faults.retries, 1);
    EXPECT_EQ(out.faults.failovers, 1);
    // Killed at 2 ms, backed off 1 ms, re-served in 10 ms on the
    // surviving device: 13 ms total, within the 100 ms bound.
    EXPECT_EQ(out.makespan, milliseconds(13));
    ASSERT_EQ(out.devices.size(), 2u);
    EXPECT_EQ(out.devices[1].dispatched, 1u);
}

TEST(FaultServing, DoomedRetryIsShedNotRetriedForever)
{
    // Feasible at arrival (10 ms service vs 12 ms bound), but the
    // crash burns the slack: the retry re-enters admission, which
    // sheds it instead of bouncing it between dead dispatches.
    std::vector<ModelRequest> trace{
        {ModelId::ResNet50, 0, 0, milliseconds(12)}};
    ServingSimParams params;
    params.cluster.deviceCount = 2;
    params.faults = multidnn::singleCrash(0, milliseconds(2));
    auto out =
        simulateServing(trace, DeadlinePolicy{}, handTable(), params);

    EXPECT_EQ(out.stats.completed(), 0u);
    EXPECT_EQ(out.stats.shedCount(), 1u);
    EXPECT_EQ(out.faults.retries, 1);    // one re-dispatch attempt
    EXPECT_EQ(out.faults.faultSheds, 0); // admission shed it, not the
                                         // retry budget
    EXPECT_EQ(out.stats.goodput(), 0u);
}

TEST(FaultServing, FaultCountersRideTheOutcome)
{
    // A slowdown window stretches every dispatch inside it; the run
    // still completes (no retries) and the outcome says so.
    std::vector<ModelRequest> trace{{ModelId::ResNet50, 0, 0, 0}};
    ServingSimParams params;
    params.faults = multidnn::singleSlowdown(0, 0, milliseconds(100),
                                             /*factor=*/3.0);
    auto out =
        simulateServing(trace, FifoPolicy{}, handTable(), params);
    EXPECT_EQ(out.stats.completed(), 1u);
    EXPECT_EQ(out.makespan, milliseconds(30)); // 10 ms x 3
    EXPECT_EQ(out.faults.retries, 0);
    EXPECT_EQ(out.faults.crashes, 0);
}

TEST(FaultServing, CrossValidatesAgainstEventSchedulerUnderFaults)
{
    // The tentpole invariant: with an injected fault schedule, the
    // fast simulator and the real EventScheduler run the SAME shared
    // event loop over the SAME cluster state machine, so their entire
    // observable outcome — completions, sheds, retries, failovers,
    // per-request latency order (held via the order-sensitive P²
    // estimators), per-device dispatch counts and downtime — must
    // agree exactly at scale, faults included.
    core::FlashMem fm(gpusim::DeviceProfile::onePlus12());
    ModelMix mix;
    // Bounded and unbounded flavors: bounded requests exercise the
    // retry-vs-readmission interplay (a doomed retry is shed), the
    // unbounded share guarantees surviving failover dispatches.
    mix.entries = {{ModelId::ResNet50, 2.0, milliseconds(150), 0},
                   {ModelId::DepthAnythingS, 1.0, milliseconds(400),
                    0},
                   {ModelId::ResNet50, 1.0, 0, 0}};
    auto services = calibrateServices(fm, mix.distinctModels());

    auto trace = poissonTrace(mix, 60.0, 2500, /*seed=*/61);

    // A mixed schedule: a mid-run crash with rejoin, a thermal
    // slowdown, a watchdog-tripping stall, and a seeded background of
    // stalls and transient DMA errors on both devices.
    multidnn::FaultPlanParams fp;
    fp.stallsPerSecond = 0.5;
    fp.meanStall = milliseconds(40);
    fp.dmaErrorsPerSecond = 1.0;
    auto plan = multidnn::crashAndRejoin(0, milliseconds(500),
                                         milliseconds(400));
    plan = multidnn::mergeFaultPlans(
        plan, multidnn::singleSlowdown(1, milliseconds(200),
                                       milliseconds(600), 3.0));
    plan = multidnn::mergeFaultPlans(
        plan,
        multidnn::singleStall(1, seconds(2), seconds(3)));
    plan = multidnn::mergeFaultPlans(
        plan, multidnn::generateFaultPlan(fp, 2, seconds(30), 7));

    multidnn::DeadlinePolicy policy;
    ServingSimParams params;
    params.readyLimit = 0;
    params.cluster.deviceCount = 2;
    params.cluster.overlapInitWithExec = true;
    params.faults = plan;
    auto fast = simulateServing(trace, policy, services, params);

    multidnn::SchedulerConfig cfg;
    cfg.cluster.deviceCount = 2;
    cfg.cluster.overlapInitWithExec = true;
    cfg.faults = plan;
    multidnn::EventScheduler sched(fm, cfg);
    auto real = sched.run(trace, policy);
    auto real_stats = ServingStats::fromOutcome(real);

    // The faults actually bit: kills, retries, failovers, downtime.
    ASSERT_GT(real.runs.size(), 1000u);
    ASSERT_GT(real.faults.crashes, 0);
    ASSERT_GT(real.faults.retries, 0);
    ASSERT_GT(real.faults.failovers, 0);

    EXPECT_EQ(real.runs.size(), fast.stats.completed());
    EXPECT_EQ(real.shed.size(), fast.stats.shedCount());
    EXPECT_EQ(real.goodput(), fast.stats.goodput());
    EXPECT_EQ(real.makespan, fast.makespan);
    EXPECT_EQ(real_stats.p50(), fast.stats.p50());
    EXPECT_EQ(real_stats.p95(), fast.stats.p95());
    EXPECT_EQ(real_stats.p99(), fast.stats.p99());
    EXPECT_DOUBLE_EQ(real_stats.meanLatencyMs(),
                     fast.stats.meanLatencyMs());

    EXPECT_EQ(real.faults.crashes, fast.faults.crashes);
    EXPECT_EQ(real.faults.timeouts, fast.faults.timeouts);
    EXPECT_EQ(real.faults.dmaAborts, fast.faults.dmaAborts);
    EXPECT_EQ(real.faults.retries, fast.faults.retries);
    EXPECT_EQ(real.faults.failovers, fast.faults.failovers);
    EXPECT_EQ(real.faults.faultSheds, fast.faults.faultSheds);
    EXPECT_EQ(real.faults.starved, fast.faults.starved);

    ASSERT_EQ(real.devices.size(), 2u);
    ASSERT_EQ(fast.devices.size(), 2u);
    for (int d = 0; d < 2; ++d) {
        EXPECT_EQ(real.devices[d].dispatched,
                  fast.devices[d].dispatched);
        EXPECT_EQ(real.devices[d].downTime, fast.devices[d].downTime);
        EXPECT_EQ(real.devices[d].computeBusyTime,
                  fast.devices[d].computeBusyTime);
        EXPECT_EQ(real.devices[d].dmaBusyTime,
                  fast.devices[d].dmaBusyTime);
    }
}

TEST(Sweep, DeviceCountsScaleThroughput)
{
    ModelMix mix;
    mix.entries = {{ModelId::ResNet50, 1.0, milliseconds(100), 0}};
    SweepParams sp;
    sp.loQps = 2.0;
    sp.hiQps = 256.0;
    sp.requestsPerProbe = 20000;
    sp.seed = 5;
    sp.slo.p99Bound = milliseconds(100);
    auto points = sweepDeviceCounts(mix, FifoPolicy{}, overlapTable(),
                                    sp, {1, 2, 4});
    ASSERT_EQ(points.size(), 6u); // 3 counts x overlap off/on

    auto qps_at = [&](int devices, bool overlap) {
        for (const auto &p : points) {
            if (p.devices == devices && p.overlap == overlap)
                return p.sweep.maxSustainableQps;
        }
        return -1.0;
    };
    // Monotone in devices, and sharding beats proportional scaling
    // of the knee (pooling smooths the tail).
    for (bool overlap : {false, true}) {
        EXPECT_GT(qps_at(2, overlap), 1.5 * qps_at(1, overlap));
        EXPECT_GT(qps_at(4, overlap), 1.5 * qps_at(2, overlap));
    }
    // A nonzero init phase makes overlap strictly help.
    EXPECT_GT(qps_at(1, true), qps_at(1, false));
}

TEST(Sweep, ZeroInitMakesOverlapANoOp)
{
    // With no preload phase (initService == 0) the overlap model
    // degenerates to the serialized device: identical figures, off
    // or on.
    ModelMix mix;
    mix.entries = {{ModelId::ResNet50, 1.0, milliseconds(100), 0}};
    auto trace = poissonTrace(mix, 40.0, 5000, 13);
    ServingSimParams off;
    ServingSimParams on;
    on.cluster.overlapInitWithExec = true;
    auto a = simulateServing(trace, FifoPolicy{}, handTable(), off);
    auto b = simulateServing(trace, FifoPolicy{}, handTable(), on);
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.stats.p99(), b.stats.p99());
    EXPECT_EQ(a.stats.completed(), b.stats.completed());
}

TEST(Calibration, SloHelpersStampBounds)
{
    auto table = handTable();
    std::vector<std::pair<ModelId, double>> w{
        {ModelId::ResNet50, 3.0}, {ModelId::ViT, 1.0}};
    // 0.75 * 10ms + 0.25 * 40ms = 17.5 ms.
    EXPECT_EQ(meanService(table, w),
              static_cast<SimTime>(milliseconds(17.5)));

    std::vector<ModelRequest> trace{{ModelId::ResNet50, 0, 0, 0},
                                    {ModelId::ViT, 10, 0, 0}};
    applyLatencyBound(trace, milliseconds(99));
    EXPECT_EQ(trace[0].latencyBound, milliseconds(99));
    applyLatencyBounds(trace, {{ModelId::ViT, milliseconds(123)}});
    EXPECT_EQ(trace[0].latencyBound, milliseconds(99));
    EXPECT_EQ(trace[1].latencyBound, milliseconds(123));
}

} // namespace
} // namespace flashmem::serving
