#!/usr/bin/env python3
"""Fixture-driven tests for tools/check_bench_regression.py.

The regression gate guards every committed BENCH_table4.json
replacement (tools/run_benchmarks.sh), so its failure paths need the
same proof-of-life the lint checks get: a fixture that trips each path
and an assertion on the exit code and diagnostic. Fixtures live in
tests/regression_fixtures/.

Run directly or via ctest (check_bench_regression_selftest).
"""

import os
import subprocess
import sys
import unittest

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
GATE = os.path.join(REPO, "tools", "check_bench_regression.py")
FIXTURES = os.path.join(REPO, "tests", "regression_fixtures")


def run_gate(*args):
    proc = subprocess.run(
        [sys.executable, GATE, *args],
        capture_output=True, text=True, cwd=REPO)
    return proc.returncode, proc.stdout, proc.stderr


def fixture(name):
    return os.path.join(FIXTURES, name)


GOOD = fixture("snapshot_good.json")


class PassingRun(unittest.TestCase):
    def test_identical_snapshots_pass(self):
        rc, out, err = run_gate(GOOD, GOOD)
        self.assertEqual(rc, 0, f"expected PASS\n{out}{err}")
        self.assertIn("regression gate: PASS", out)
        self.assertNotIn("REGRESSION:", err)


class UsageErrors(unittest.TestCase):
    """Exit 2 (usage), never exit 1 (verdict), for unusable inputs."""

    def test_wrong_arg_count(self):
        rc, _, err = run_gate(GOOD)
        self.assertEqual(rc, 2)
        self.assertIn("Usage:", err)

    def test_missing_file(self):
        rc, _, err = run_gate(GOOD, fixture("does_not_exist.json"))
        self.assertEqual(rc, 2)
        self.assertIn("cannot read fresh snapshot", err)

    def test_malformed_json_is_diagnosed_not_a_traceback(self):
        rc, _, err = run_gate(GOOD, fixture("malformed.json"))
        self.assertEqual(rc, 2)
        self.assertIn("malformed JSON in fresh snapshot", err)
        self.assertNotIn("Traceback", err)

    def test_malformed_committed_side_diagnosed_too(self):
        rc, _, err = run_gate(fixture("malformed.json"), GOOD)
        self.assertEqual(rc, 2)
        self.assertIn("malformed JSON in committed snapshot", err)


class MissingSection(unittest.TestCase):
    def test_lost_sections_fail_loudly(self):
        rc, _, err = run_gate(GOOD, fixture("fresh_missing_section.json"))
        self.assertEqual(rc, 1)
        self.assertIn("serving section missing from the fresh run", err)
        self.assertIn("serving_faults missing from the fresh run", err)
        self.assertIn("serving_obs missing from the fresh run", err)
        self.assertIn("solver_portfolio missing from the fresh run",
                      err)


class RegressionBeyondBound(unittest.TestCase):
    """Each tolerance gate fires on the regressed fixture."""

    def setUp(self):
        self.rc, self.out, self.err = run_gate(
            GOOD, fixture("fresh_regressed.json"))

    def test_exit_code_and_prefix(self):
        self.assertEqual(self.rc, 1)
        self.assertIn("REGRESSION:", self.err)

    def test_speedup_drop_beyond_10pct(self):
        self.assertIn("aggregate solver speedup regressed", self.err)

    def test_objective_worsened(self):
        self.assertIn("instance vit-8b: objective worsened", self.err)

    def test_table4_status_worsened(self):
        self.assertIn("table4 ViT-8B: status worsened", self.err)

    def test_memory_aware_replans_went_dead(self):
        self.assertIn("no re-plans", self.err)

    def test_serving_p95_and_goodput(self):
        self.assertIn("serving policy deadline: p95 worsened", self.err)
        self.assertIn("serving policy deadline: goodput dropped",
                      self.err)

    def test_fault_accounting_and_crash_ratio(self):
        self.assertIn("neither completed nor shed", self.err)
        self.assertIn("mid-run crash now costs more than 35%", self.err)

    def test_admission_delta_gone_nonpositive(self):
        self.assertIn("no longer strictly beats", self.err)

    def test_sharding_qps_efficiency_and_overlap(self):
        self.assertIn("sharding point 4dev/on: max sustainable QPS",
                      self.err)
        self.assertIn("scaling efficiency at 4 devices", self.err)
        self.assertIn("cross-request overlap no longer improves",
                      self.err)

    def test_obs_overhead_noise_outcome_and_dead_trace(self):
        self.assertIn("tracing-on overhead exceeds 10%", self.err)
        self.assertIn("tracing-off arms disagree by more than 10%",
                      self.err)
        self.assertIn("tracing must observe, never perturb", self.err)
        self.assertIn("recorded no events", self.err)

    def test_portfolio_conflict_ratio_and_symmetry_rows(self):
        self.assertIn("symmetry-breaking conflict ratio regressed",
                      self.err)
        self.assertIn("no longer cuts conflicts", self.err)
        self.assertIn("symmetry instance sym-w5-l3: lex rows no "
                      "longer cut conflicts", self.err)

    def test_portfolio_budget_instance_paths(self):
        self.assertIn("budget instance budget-w8-l5: portfolio status "
                      "worsened OPTIMAL -> FEASIBLE", self.err)
        self.assertIn("budget instance budget-w8-l5: portfolio "
                      "objective worsened", self.err)
        self.assertIn("budget instance budget-w10-l6: missing from "
                      "the fresh run", self.err)

    def test_portfolio_optimal_windows_and_determinism(self):
        self.assertIn("portfolio proves fewer windows optimal",
                      self.err)
        self.assertIn("no longer proves strictly more windows optimal",
                      self.err)
        self.assertIn("no longer identical across pool sizes 1/2/8",
                      self.err)

    def test_within_tolerance_rows_not_flagged(self):
        # The llama2-13b objective and 1-device QPS are unchanged in
        # the regressed fixture; the gate must not flag them.
        self.assertNotIn("llama2-13b: objective worsened", self.err)
        self.assertNotIn("sharding point 1dev/on", self.err)


if __name__ == "__main__":
    unittest.main(verbosity=2)
