/**
 * @file
 * Tests for the mobile-GPU simulator: timelines, memory tracking,
 * texture layout + cache, the kernel latency model and its Figure-2
 * overlap-penalty curves, device profiles, and the power model.
 */

#include <gtest/gtest.h>

#include "graph/builder.hh"
#include "gpusim/device.hh"
#include "gpusim/kernel.hh"
#include "gpusim/memory.hh"
#include "gpusim/power.hh"
#include "gpusim/simulator.hh"
#include "gpusim/texture.hh"
#include "gpusim/texture_cache.hh"
#include "gpusim/timeline.hh"

namespace flashmem::gpusim {
namespace {

using graph::OpClass;
using graph::OpKind;

// ---------------------------------------------------------------- timeline

TEST(Timeline, SerializesReservations)
{
    Timeline t("q");
    auto a = t.reserve(0, 100);
    auto b = t.reserve(0, 50);
    EXPECT_EQ(a.start, 0);
    EXPECT_EQ(a.end, 100);
    EXPECT_EQ(b.start, 100); // waits for a
    EXPECT_EQ(b.end, 150);
    EXPECT_EQ(t.busyTime(), 150);
}

TEST(Timeline, RespectsEarliestStart)
{
    Timeline t("q");
    auto a = t.reserve(500, 100);
    EXPECT_EQ(a.start, 500);
    auto b = t.reserve(0, 10); // resource free at 600
    EXPECT_EQ(b.start, 600);
}

TEST(Timeline, ResetClearsState)
{
    Timeline t("q");
    t.reserve(0, 100);
    t.reset();
    EXPECT_EQ(t.freeAt(), 0);
    EXPECT_EQ(t.busyTime(), 0);
    EXPECT_EQ(t.reservations(), 0u);
}

TEST(BandwidthTimeline, TransferTimeMatchesBandwidth)
{
    BandwidthTimeline ch("disk", Bandwidth::gbps(1.5));
    auto iv = ch.transfer(0, 1'500'000'000ull); // 1.5 GB at 1.5 GB/s
    EXPECT_EQ(iv.duration(), seconds(1.0));
    EXPECT_EQ(ch.bytesMoved(), 1'500'000'000ull);
}

TEST(BandwidthTimeline, PerOpOverheadOnIdleChannelOnly)
{
    BandwidthTimeline ch("xf", Bandwidth::gbps(1.0), microseconds(80));
    // Idle channel: request latency applies.
    auto a = ch.transfer(0, 1'000'000);
    EXPECT_EQ(a.duration(), microseconds(80) + milliseconds(1.0));
    // Backlogged channel (earliest < freeAt): sequential continuation.
    auto b = ch.transfer(0, 1'000'000);
    EXPECT_EQ(b.duration(), milliseconds(1.0));
    EXPECT_EQ(b.start, a.end);
    // Idle again after a gap: latency returns.
    auto c = ch.transfer(b.end + seconds(1.0), 1'000'000);
    EXPECT_EQ(c.duration(), microseconds(80) + milliseconds(1.0));
}

// ------------------------------------------------------------------ memory

TEST(MemoryTracker, TracksPeakAndKinds)
{
    MemoryTracker m;
    m.alloc(MemKind::UnifiedWeights, mib(100), 0);
    m.alloc(MemKind::Activations, mib(50), milliseconds(1));
    EXPECT_EQ(m.used(), mib(150));
    m.free(MemKind::UnifiedWeights, mib(100), milliseconds(2));
    EXPECT_EQ(m.used(), mib(50));
    EXPECT_EQ(m.peak(), mib(150));
    EXPECT_EQ(m.peak(MemKind::UnifiedWeights), mib(100));
    EXPECT_EQ(m.used(MemKind::Activations), mib(50));
}

TEST(MemoryTracker, DetectsOom)
{
    MemoryTracker m(gib(1));
    m.alloc(MemKind::Scratch, mib(900), 0);
    EXPECT_FALSE(m.oomOccurred());
    m.alloc(MemKind::Scratch, mib(200), 1);
    EXPECT_TRUE(m.oomOccurred());
    // OOM flag is sticky even after frees.
    m.free(MemKind::Scratch, mib(1100), 2);
    EXPECT_TRUE(m.oomOccurred());
}

TEST(MemoryTracker, AverageIsTimeWeighted)
{
    MemoryTracker m;
    m.alloc(MemKind::Activations, mib(100), 0);
    m.alloc(MemKind::Activations, mib(100), milliseconds(10));
    m.free(MemKind::Activations, mib(200), milliseconds(20));
    // 100 MiB for 10 ms, 200 MiB for 10 ms -> 150 MiB average.
    EXPECT_NEAR(m.averageBytes(0, milliseconds(20)),
                static_cast<double>(mib(150)), 1e3);
}

TEST(MemoryTracker, OverFreeDies)
{
    MemoryTracker m;
    m.alloc(MemKind::Scratch, 100, 0);
    EXPECT_DEATH(m.free(MemKind::Scratch, 200, 1), "over-free");
}

// ----------------------------------------------------------------- texture

TEST(TextureLayout, PacksFourChannels)
{
    graph::TensorDesc d{{1024, 1024}, Precision::FP16};
    auto layout = TextureLayout::forTensor(d);
    // 1M elements -> 256K texels; near-square -> 512 x 512.
    EXPECT_EQ(layout.width, 512);
    EXPECT_EQ(layout.height, 512);
    EXPECT_GE(layout.paddedBytes(Precision::FP16), d.bytes());
}

TEST(TextureLayout, RespectsMaxWidth)
{
    graph::TensorDesc d{{4096, 4096 * 64}, Precision::FP16};
    auto layout = TextureLayout::forTensor(d, 16384);
    EXPECT_LE(layout.width, 16384);
    EXPECT_GE(static_cast<Bytes>(layout.texels()) * 4,
              static_cast<Bytes>(d.shape.elements()));
}

TEST(TextureLayout, PaddingWasteIsBounded)
{
    // Odd-sized tensors pad at most one extra row + channel remainder.
    graph::TensorDesc d{{999, 37}, Precision::FP16};
    auto layout = TextureLayout::forTensor(d);
    double waste = static_cast<double>(layout.paddedBytes(
                       Precision::FP16)) /
                   static_cast<double>(d.bytes());
    EXPECT_LT(waste, 1.10);
}

TEST(TransformCost, DedicatedSlowerThanInline)
{
    auto dev = DeviceProfile::onePlus12();
    Bytes bytes = mib(16);
    auto dedicated =
        dedicatedTransformCost(dev, bytes, Bandwidth::mbps(150), 2);
    auto inline_cost = inlineTransformCost(dev, bytes);
    EXPECT_GT(dedicated.time, 10 * inline_cost.time);
    EXPECT_GT(dedicated.scratchBytes, 0u);
    EXPECT_EQ(inline_cost.scratchBytes, 0u);
}

// ----------------------------------------------------------- texture cache

TEST(TextureCache, HitsOnRepeatedAccess)
{
    TextureCache cache(kib(64), 64, 4);
    EXPECT_FALSE(cache.access(0));
    EXPECT_TRUE(cache.access(0));
    EXPECT_TRUE(cache.access(32)); // same line
    EXPECT_FALSE(cache.access(64)); // next line
    EXPECT_EQ(cache.hits(), 2u);
    EXPECT_EQ(cache.misses(), 2u);
}

TEST(TextureCache, LruEvictsOldest)
{
    // 2 sets x 2 ways x 64B lines = 256 B cache.
    TextureCache cache(256, 64, 2);
    EXPECT_EQ(cache.sets(), 2u);
    // Fill set 0 (addresses 0 and 128 map to set 0).
    cache.access(0);
    cache.access(128);
    cache.access(0);        // refresh 0
    cache.access(256);      // evicts 128 (LRU)
    EXPECT_TRUE(cache.access(0));
    EXPECT_FALSE(cache.access(128));
}

TEST(TextureCache, TiledSweepBeatsStridedSweep)
{
    graph::TensorDesc d{{768, 3072}, Precision::FP16};
    auto layout = TextureLayout::forTensor(d);

    TextureCache cache(kib(128), 64, 8);
    double tiled = simulateTiledSweep(cache, layout, Precision::FP16, 8,
                                      8);
    TextureCache cache2(kib(128), 64, 8);
    double strided = simulateStridedSweep(cache2, d.bytes(), 3072 * 2, 2);

    // The 2.5D tiled layout exploits 2D locality; a strided buffer walk
    // thrashes. This is the premise of texture-memory optimization.
    EXPECT_GT(tiled, 0.70);
    EXPECT_LT(strided, 0.30);
}

// ------------------------------------------------------------ kernel model

KernelSpec
matmulSpec(std::int64_t m, std::int64_t k, std::int64_t n)
{
    KernelSpec s;
    s.kind = OpKind::MatMul;
    s.macs = static_cast<std::uint64_t>(m) * k * n;
    s.inputBytes = static_cast<Bytes>(m) * k * 2;
    s.outputBytes = static_cast<Bytes>(m) * n * 2;
    s.weightBytes = static_cast<Bytes>(k) * n * 2;
    return s;
}

KernelSpec
elementalSpec(Bytes bytes)
{
    KernelSpec s;
    s.kind = OpKind::Add;
    s.macs = 0;
    s.inputBytes = bytes;
    s.outputBytes = bytes;
    return s;
}

KernelSpec
softmaxSpec(Bytes bytes)
{
    KernelSpec s;
    s.kind = OpKind::Softmax;
    s.macs = bytes; // a few flops per element
    s.inputBytes = bytes;
    s.outputBytes = bytes;
    return s;
}

TEST(KernelModel, LaunchOverheadFloorsLatency)
{
    KernelModel km(DeviceProfile::onePlus12());
    KernelSpec tiny = elementalSpec(16);
    EXPECT_GE(km.baseLatency(tiny),
              DeviceProfile::onePlus12().kernelLaunchOverhead);
}

TEST(KernelModel, BigMatmulIsComputeBound)
{
    KernelModel km(DeviceProfile::onePlus12());
    auto spec = matmulSpec(512, 2048, 2048);
    EXPECT_GT(km.computeTime(spec), km.memoryTime(spec));
    // ~2.1 GMACs at ~1 TFLOP effective: milliseconds scale.
    EXPECT_GT(km.baseLatency(spec), milliseconds(1));
    EXPECT_LT(km.baseLatency(spec), milliseconds(40));
}

TEST(KernelModel, TexturePathFasterThanBufferPath)
{
    KernelModel km(DeviceProfile::onePlus12());
    auto spec = elementalSpec(mib(16));
    spec.usesTexture = true;
    auto tex = km.baseLatency(spec);
    spec.usesTexture = false;
    auto buf = km.baseLatency(spec);
    // Romou reports texture kernels up to ~3.5x faster.
    EXPECT_GT(static_cast<double>(buf) / tex, 2.0);
    EXPECT_LT(static_cast<double>(buf) / tex, 5.0);
}

TEST(KernelModel, Figure2CurveOrdering)
{
    KernelModel km(DeviceProfile::onePlus12());
    auto mm = matmulSpec(512, 1024, 1024);
    auto add = elementalSpec(mm.inputBytes);
    auto sm = softmaxSpec(mm.inputBytes);

    // Stream extra bytes equal to each kernel's input (ratio 1.0).
    Bytes extra = mm.inputBytes;
    double mm_rel = static_cast<double>(km.inlineLoadPenalty(mm, extra)) /
                    km.baseLatency(mm);
    double add_rel =
        static_cast<double>(km.inlineLoadPenalty(add, extra)) /
        km.baseLatency(add);
    double sm_rel = static_cast<double>(km.inlineLoadPenalty(sm, extra)) /
                    km.baseLatency(sm);

    // Figure 2: Softmax/LayerNorm steepest, Matmul shallowest.
    EXPECT_LT(mm_rel, add_rel);
    EXPECT_LT(add_rel, sm_rel);
}

TEST(KernelModel, PenaltyMonotoneInBytes)
{
    KernelModel km(DeviceProfile::onePlus12());
    auto spec = elementalSpec(mib(4));
    SimTime prev = 0;
    for (Bytes e = 0; e <= mib(16); e += mib(2)) {
        SimTime p = km.inlineLoadPenalty(spec, e);
        EXPECT_GE(p, prev);
        prev = p;
    }
}

TEST(KernelModel, PipelinedRewriteReducesPenalty)
{
    KernelModel km(DeviceProfile::onePlus12());
    auto spec = matmulSpec(256, 512, 512);
    spec.pipelined = false;
    auto naive = km.inlineLoadPenalty(spec, mib(8));
    spec.pipelined = true;
    auto piped = km.inlineLoadPenalty(spec, mib(8));
    EXPECT_LT(piped, naive);
}

TEST(KernelModel, CapacityInversionRespectsThreshold)
{
    KernelModel km(DeviceProfile::onePlus12());
    auto spec = elementalSpec(mib(8));
    double limit = 3.0; // elemental: 300%
    Bytes cap = km.loadCapacityBytes(spec, limit);
    ASSERT_GT(cap, 0u);
    EXPECT_LE(km.inlineLoadPenalty(spec, cap),
              static_cast<SimTime>(limit * km.baseLatency(spec)));
    // Slightly above capacity must violate the budget (tightness).
    EXPECT_GT(km.inlineLoadPenalty(spec, cap + mib(1)),
              static_cast<SimTime>(limit * km.baseLatency(spec)));
}

TEST(KernelModel, HierarchicalZeroThresholdMeansZeroCapacity)
{
    KernelModel km(DeviceProfile::onePlus12());
    auto spec = softmaxSpec(mib(4));
    EXPECT_EQ(km.loadCapacityBytes(spec, 0.0), 0u);
}

TEST(KernelModel, ReusableCapacityExceedsElemental)
{
    KernelModel km(DeviceProfile::onePlus12());
    auto mm = matmulSpec(512, 2048, 2048);
    auto add = elementalSpec(mib(2));
    // 20% budget on a big matmul still beats 300% on a small add:
    // Table 5, "L.C. Tolerance: Reusable High, Elemental Medium".
    EXPECT_GT(km.loadCapacityBytes(mm, 0.2),
              km.loadCapacityBytes(add, 3.0));
}

TEST(KernelSpecFor, ExtractsGraphProperties)
{
    graph::GraphBuilder b("toy", Precision::FP16);
    auto x = b.input({1, 128, 512});
    auto y = b.matmul(x, 1024, "fc", false);
    auto g = b.build();

    auto spec = kernelSpecFor(g, y, true);
    EXPECT_EQ(spec.kind, OpKind::MatMul);
    EXPECT_EQ(spec.macs, 128ull * 512 * 1024);
    EXPECT_EQ(spec.inputBytes, 128u * 512 * 2);
    EXPECT_EQ(spec.outputBytes, 128u * 1024 * 2);
    EXPECT_EQ(spec.weightBytes, 512u * 1024 * 2);
    EXPECT_TRUE(spec.usesTexture);
}

// --------------------------------------------------------------- devices

TEST(DeviceProfile, FourPhonesOrderedByCapability)
{
    auto op12 = DeviceProfile::onePlus12();
    auto op11 = DeviceProfile::onePlus11();
    auto p8 = DeviceProfile::pixel8();
    auto mi6 = DeviceProfile::xiaomiMi6();

    EXPECT_GT(op12.fp16Gflops, op11.fp16Gflops);
    EXPECT_GT(op11.fp16Gflops, p8.fp16Gflops);
    EXPECT_GT(p8.fp16Gflops, mi6.fp16Gflops);
    EXPECT_GT(p8.appMemoryBudget, mi6.appMemoryBudget);
    EXPECT_EQ(op12.ramBytes, gib(16));
    EXPECT_EQ(mi6.ramBytes, gib(6));
}

TEST(DeviceProfile, Figure1BandwidthHierarchy)
{
    auto dev = DeviceProfile::onePlus12();
    EXPECT_LT(dev.diskToUm.bytesPerSecond, dev.umToTm.bytesPerSecond);
    EXPECT_LT(dev.umToTm.bytesPerSecond, dev.tmToSm.bytesPerSecond);
    EXPECT_LT(dev.tmToSm.bytesPerSecond, dev.l2.bytesPerSecond);
    EXPECT_DOUBLE_EQ(dev.diskToUm.bytesPerSecond, 1.5e9);
    EXPECT_DOUBLE_EQ(dev.l2.bytesPerSecond, 560e9);
}

// ------------------------------------------------------------------ power

TEST(PowerModel, EnergyScalesWithActivity)
{
    PowerModel pm(DeviceProfile::onePlus12());
    ActivitySummary idle{seconds(1.0), 0, 0, 0};
    ActivitySummary busy{seconds(1.0), seconds(0.9), seconds(0.5),
                         gib(2)};
    EXPECT_GT(pm.energyJoules(busy), pm.energyJoules(idle));
    EXPECT_NEAR(pm.averagePowerW(idle),
                DeviceProfile::onePlus12().basePowerW, 1e-9);
    // Mobile SoC under combined load: single-digit watts.
    EXPECT_GT(pm.averagePowerW(busy), 3.0);
    EXPECT_LT(pm.averagePowerW(busy), 12.0);
}

// -------------------------------------------------------------- simulator

TEST(GpuSimulator, TimelinesShareOneClock)
{
    GpuSimulator sim(DeviceProfile::onePlus12());
    auto load = sim.disk().transfer(0, mib(150));
    auto compute = sim.computeQueue().reserve(load.end, milliseconds(5));
    EXPECT_EQ(compute.start, load.end);
    EXPECT_EQ(sim.horizon(), compute.end);
}

TEST(GpuSimulator, DiskAndComputeOverlap)
{
    GpuSimulator sim(DeviceProfile::onePlus12());
    auto load = sim.disk().transfer(0, mib(1500)); // ~1 s
    auto k = sim.computeQueue().reserve(0, milliseconds(400));
    // Independent queues: compute does not wait for the disk.
    EXPECT_LT(k.end, load.end);
    auto a = sim.activity(sim.horizon());
    EXPECT_EQ(a.computeBusy, milliseconds(400));
    EXPECT_GT(a.diskBusy, milliseconds(900));
}

// Property sweep: capacity grows with threshold for every class.
class CapacityMonotoneInThreshold
    : public ::testing::TestWithParam<double>
{
};

TEST_P(CapacityMonotoneInThreshold, AcrossClasses)
{
    KernelModel km(DeviceProfile::onePlus12());
    double limit = GetParam();
    auto mm = matmulSpec(256, 1024, 1024);
    auto add = elementalSpec(mib(4));
    EXPECT_LE(km.loadCapacityBytes(mm, limit),
              km.loadCapacityBytes(mm, limit + 0.1));
    EXPECT_LE(km.loadCapacityBytes(add, limit),
              km.loadCapacityBytes(add, limit + 0.1));
}

INSTANTIATE_TEST_SUITE_P(Thresholds, CapacityMonotoneInThreshold,
                         ::testing::Values(0.05, 0.1, 0.2, 0.5, 1.0, 2.0,
                                           3.0));

} // namespace
} // namespace flashmem::gpusim
