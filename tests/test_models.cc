/**
 * @file
 * Tests for the model zoo: every built model must match the published
 * Table-6 characteristics (parameters, MACs, lowered layer count) within
 * tolerance, validate structurally, and expose streamable weights.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graph/op.hh"
#include "models/model_zoo.hh"

namespace flashmem::models {
namespace {

using graph::Graph;
using graph::OpClass;
using graph::OpKind;

class ZooModel : public ::testing::TestWithParam<ModelSpec>
{
  protected:
    Graph
    build() const
    {
        return buildModel(GetParam().id);
    }
};

TEST_P(ZooModel, ParamsMatchPaperTable6)
{
    auto g = build();
    double params_m = static_cast<double>(g.totalParams()) / 1e6;
    double rel = params_m / GetParam().paperParamsM;
    EXPECT_GT(rel, 0.88) << "params " << params_m << "M vs paper "
                         << GetParam().paperParamsM << "M";
    EXPECT_LT(rel, 1.12);
}

TEST_P(ZooModel, MacsMatchPaperTable6)
{
    auto g = build();
    double macs_g = static_cast<double>(g.totalMacs()) / 1e9;
    double rel = macs_g / GetParam().paperMacsG;
    EXPECT_GT(rel, 0.75) << "MACs " << macs_g << "G vs paper "
                         << GetParam().paperMacsG << "G";
    EXPECT_LT(rel, 1.25);
}

TEST_P(ZooModel, LayerCountMatchesPaperTable6)
{
    auto g = build();
    double rel = static_cast<double>(g.layerCount()) /
                 GetParam().paperLayers;
    EXPECT_GT(rel, 0.93) << "layers " << g.layerCount() << " vs paper "
                         << GetParam().paperLayers;
    EXPECT_LT(rel, 1.07);
}

TEST_P(ZooModel, ValidatesStructurally)
{
    auto g = build();
    EXPECT_TRUE(g.validate(false));
}

TEST_P(ZooModel, WeightsConsumedInOrder)
{
    auto g = build();
    for (const auto &w : g.weights()) {
        ASSERT_GE(w.consumer, 0);
        ASSERT_LT(w.consumer,
                  static_cast<graph::NodeId>(g.layerCount()));
        // The consumer node must list this weight.
        const auto &ws = g.node(w.consumer).weights;
        EXPECT_NE(std::find(ws.begin(), ws.end(), w.id), ws.end());
    }
}

TEST_P(ZooModel, HasAllThreeOperatorClasses)
{
    auto g = build();
    std::set<OpClass> classes;
    for (const auto &n : g.nodes())
        classes.insert(graph::opClass(n.kind));
    // Every evaluated network exercises elemental + reusable +
    // hierarchical operators (the premise of the capacity model).
    EXPECT_TRUE(classes.count(OpClass::Elemental));
    EXPECT_TRUE(classes.count(OpClass::Reusable));
    EXPECT_TRUE(classes.count(OpClass::Hierarchical));
}

TEST_P(ZooModel, WeightBytesConsistentWithPrecision)
{
    auto g = build();
    EXPECT_EQ(g.totalWeightBytes(),
              static_cast<Bytes>(g.totalParams()) * 2); // fp16
    auto g32 = buildModel(GetParam().id, Precision::FP32);
    EXPECT_EQ(g32.totalWeightBytes(),
              static_cast<Bytes>(g32.totalParams()) * 4);
}

INSTANTIATE_TEST_SUITE_P(
    Table6, ZooModel, ::testing::ValuesIn(modelZoo()),
    [](const ::testing::TestParamInfo<ModelSpec> &info) {
        std::string name = info.param.abbr;
        for (auto &c : name) {
            if (!isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        return name;
    });

TEST(ModelZoo, SpecLookupRoundTrip)
{
    for (const auto &spec : modelZoo()) {
        EXPECT_EQ(modelSpec(spec.id).abbr, spec.abbr);
        EXPECT_EQ(modelIdFromAbbr(spec.abbr), spec.id);
    }
}

TEST(ModelZoo, ElevenModels)
{
    EXPECT_EQ(modelZoo().size(), 11u);
}

TEST(ModelZoo, GptFamilyScalesMonotonically)
{
    auto s = buildModel(ModelId::GPTNeoS);
    auto m = buildModel(ModelId::GPTNeo1_3B);
    auto l = buildModel(ModelId::GPTNeo2_7B);
    EXPECT_LT(s.totalParams(), m.totalParams());
    EXPECT_LT(m.totalParams(), l.totalParams());
    EXPECT_LT(s.totalMacs(), m.totalMacs());
    EXPECT_LT(m.totalMacs(), l.totalMacs());
    EXPECT_LT(s.layerCount(), m.layerCount());
    EXPECT_LT(m.layerCount(), l.layerCount());
}

TEST(ModelZoo, CausalModelsContainMaskOps)
{
    auto g = buildModel(ModelId::GPTNeoS);
    int softmax = 0;
    for (const auto &n : g.nodes())
        softmax += (n.kind == OpKind::Softmax);
    EXPECT_EQ(softmax, 12); // one per block
}

TEST(SyntheticTransformer, Vit8BParams)
{
    SyntheticTransformerCfg cfg;
    cfg.name = "vit_8b";
    cfg.blocks = 40;
    cfg.dModel = 4096;
    cfg.heads = 32;
    cfg.vocab = 1000;
    auto g = buildSyntheticTransformer(cfg, Precision::FP16);
    double params_b = static_cast<double>(g.totalParams()) / 1e9;
    EXPECT_GT(params_b, 7.2);
    EXPECT_LT(params_b, 8.8);
}

TEST(SyntheticTransformer, Llama13BParams)
{
    SyntheticTransformerCfg cfg;
    cfg.name = "llama2_13b";
    cfg.blocks = 40;
    cfg.dModel = 5120;
    cfg.heads = 40;
    cfg.ffnHidden = 13824;
    cfg.llamaStyle = true;
    auto g = buildSyntheticTransformer(cfg, Precision::FP16);
    double params_b = static_cast<double>(g.totalParams()) / 1e9;
    EXPECT_GT(params_b, 11.7);
    EXPECT_LT(params_b, 14.3);
}

TEST(SyntheticTransformer, Llama70BGroupedQueryAttention)
{
    SyntheticTransformerCfg cfg;
    cfg.name = "llama2_70b";
    cfg.blocks = 80;
    cfg.dModel = 8192;
    cfg.heads = 64;
    cfg.ffnHidden = 28672;
    cfg.kvDim = 1024;
    cfg.llamaStyle = true;
    auto g = buildSyntheticTransformer(cfg, Precision::FP16);
    double params_b = static_cast<double>(g.totalParams()) / 1e9;
    EXPECT_GT(params_b, 63.0);
    EXPECT_LT(params_b, 77.0);
}

TEST(SyntheticTransformer, LlamaStyleUsesRmsNormAndGatedFfn)
{
    SyntheticTransformerCfg cfg;
    cfg.blocks = 2;
    cfg.dModel = 256;
    cfg.heads = 4;
    cfg.llamaStyle = true;
    auto g = buildSyntheticTransformer(cfg, Precision::FP16);
    int rms = 0, mul = 0, ln = 0;
    for (const auto &n : g.nodes()) {
        rms += (n.kind == OpKind::RMSNorm);
        mul += (n.kind == OpKind::Mul);
        ln += (n.kind == OpKind::LayerNorm);
    }
    EXPECT_EQ(rms, 5); // 2 per block + final
    EXPECT_EQ(ln, 0);
    EXPECT_GE(mul, 2); // gated FFN per block
}

} // namespace
} // namespace flashmem::models
