/**
 * @file
 * Unit tests for the graph IR: operator taxonomy, shape inference, MAC
 * accounting, DAG invariants, and builder behaviour.
 */

#include <gtest/gtest.h>

#include "graph/builder.hh"
#include "graph/graph.hh"
#include "graph/op.hh"
#include "graph/tensor.hh"

namespace flashmem::graph {
namespace {

TEST(Op, ClassificationMatchesPaperTable5)
{
    // Table 5: Elemental (ReLU, Add), Reusable (Conv, MatMul),
    // Hierarchical (LayerNorm, Softmax).
    EXPECT_EQ(opClass(OpKind::ReLU), OpClass::Elemental);
    EXPECT_EQ(opClass(OpKind::Add), OpClass::Elemental);
    EXPECT_EQ(opClass(OpKind::Conv2D), OpClass::Reusable);
    EXPECT_EQ(opClass(OpKind::MatMul), OpClass::Reusable);
    EXPECT_EQ(opClass(OpKind::LayerNorm), OpClass::Hierarchical);
    EXPECT_EQ(opClass(OpKind::Softmax), OpClass::Hierarchical);
    EXPECT_EQ(opClass(OpKind::Reshape), OpClass::Movement);
    EXPECT_EQ(opClass(OpKind::Transpose), OpClass::Movement);
}

TEST(Op, NameRoundTrip)
{
    for (int i = 0; i < static_cast<int>(OpKind::NumKinds); ++i) {
        auto kind = static_cast<OpKind>(i);
        EXPECT_EQ(opKindFromName(opKindName(kind)), kind);
    }
}

TEST(Op, WeightedKinds)
{
    EXPECT_TRUE(opUsuallyWeighted(OpKind::MatMul));
    EXPECT_TRUE(opUsuallyWeighted(OpKind::Conv2D));
    EXPECT_TRUE(opUsuallyWeighted(OpKind::Embedding));
    EXPECT_FALSE(opUsuallyWeighted(OpKind::Softmax));
    EXPECT_FALSE(opUsuallyWeighted(OpKind::Add));
}

TEST(Tensor, ShapeElementsAndBytes)
{
    TensorShape s{1, 197, 768};
    EXPECT_EQ(s.elements(), 197 * 768);
    EXPECT_EQ(s.rank(), 3u);
    TensorDesc d16{s, Precision::FP16};
    TensorDesc d32{s, Precision::FP32};
    EXPECT_EQ(d16.bytes(), static_cast<Bytes>(197 * 768 * 2));
    EXPECT_EQ(d32.bytes(), static_cast<Bytes>(197 * 768 * 4));
}

TEST(Tensor, ToString)
{
    TensorShape s{2, 3};
    EXPECT_EQ(s.toString(), "[2, 3]");
}

TEST(Builder, MatmulShapeAndMacs)
{
    GraphBuilder b("toy", Precision::FP16);
    auto x = b.input({1, 128, 512});
    auto y = b.matmul(x, 1024, "fc");
    EXPECT_EQ(b.shapeOf(y), (TensorShape{1, 128, 1024}));

    Graph g = b.build();
    // 128 * 512 * 1024 MACs.
    EXPECT_EQ(g.totalMacs(), 128ull * 512 * 1024);
    // weight [512,1024] + bias [1024].
    EXPECT_EQ(g.totalParams(), 512 * 1024 + 1024);
}

TEST(Builder, ConvShapeInference)
{
    GraphBuilder b("toy", Precision::FP16);
    auto x = b.input({1, 3, 224, 224});
    auto y = b.conv2d(x, 64, 7, 2, 3, "stem");
    EXPECT_EQ(b.shapeOf(y), (TensorShape{1, 64, 112, 112}));

    Graph g = b.build();
    // MACs = 64 * 112*112 * 3 * 7 * 7.
    EXPECT_EQ(g.totalMacs(), 64ull * 112 * 112 * 3 * 7 * 7);
}

TEST(Builder, DepthwiseConvParamsAndMacs)
{
    GraphBuilder b("toy", Precision::FP16);
    auto x = b.input({1, 32, 56, 56});
    b.dwConv2d(x, 3, 1, 1, "dw");
    Graph g = b.build();
    EXPECT_EQ(g.totalParams(), 32 * 3 * 3);
    EXPECT_EQ(g.totalMacs(), 32ull * 56 * 56 * 3 * 3);
}

TEST(Builder, WeightsAttachToConsumer)
{
    GraphBuilder b("toy", Precision::FP16);
    auto x = b.input({1, 16});
    auto y = b.matmul(x, 8, "fc", /*bias=*/false);
    Graph g = b.build();

    ASSERT_EQ(g.weightCount(), 1u);
    const Weight &w = g.weight(0);
    EXPECT_EQ(w.consumer, y);
    EXPECT_EQ(w.desc.shape, (TensorShape{16, 8}));
    EXPECT_EQ(g.node(y).weights.size(), 1u);
}

TEST(Builder, ReshapePreservesElements)
{
    GraphBuilder b("toy", Precision::FP16);
    auto x = b.input({1, 64, 49});
    auto y = b.reshape(x, {1, 7, 7, 64}, "r");
    EXPECT_EQ(b.shapeOf(y).elements(), 64 * 49);
}

TEST(Builder, EmbeddingIsWeightHeavyButZeroMac)
{
    GraphBuilder b("toy", Precision::FP16);
    b.embedding(64, 50257, 768, "wte");
    Graph g = b.build();
    EXPECT_EQ(g.totalParams(), 50257ll * 768);
    EXPECT_EQ(g.totalMacs(), 0u);
}

TEST(Graph, TopologicalOrderEnforced)
{
    Graph g("bad", Precision::FP16);
    Node n;
    n.name = "first";
    n.kind = OpKind::Add;
    n.output = TensorDesc{TensorShape{1}, Precision::FP16};
    g.addNode(n);

    Node n2;
    n2.name = "self_loop";
    n2.kind = OpKind::Add;
    n2.inputs = {1}; // would reference itself (id 1)
    n2.output = TensorDesc{TensorShape{1}, Precision::FP16};
    EXPECT_DEATH({ g.addNode(n2); }, "topological");
}

TEST(Graph, ConsumersOf)
{
    GraphBuilder b("toy", Precision::FP16);
    auto x = b.input({1, 8});
    auto a = b.activation(x, OpKind::ReLU, "relu");
    auto c = b.add(x, a, "res");
    Graph g = b.build();

    auto consumers = g.consumersOf(x);
    EXPECT_EQ(consumers.size(), 2u);
    EXPECT_EQ(g.consumersOf(a), std::vector<NodeId>{c});
    EXPECT_TRUE(g.consumersOf(c).empty());
}

TEST(Graph, InputBytesSumsProducers)
{
    GraphBuilder b("toy", Precision::FP16);
    auto x = b.input({1, 100});
    auto y = b.activation(x, OpKind::ReLU, "relu");
    auto z = b.add(x, y, "add");
    Graph g = b.build();
    EXPECT_EQ(g.inputBytes(z), 2u * 100 * 2);
}

TEST(Graph, ValidateDetectsAcyclicWellFormed)
{
    GraphBuilder b("ok", Precision::FP32);
    auto x = b.input({4, 4});
    b.matmul(x, 4, "fc");
    Graph g = b.build();
    EXPECT_TRUE(g.validate(false));
}

TEST(Graph, AggregateStats)
{
    GraphBuilder b("toy", Precision::FP16);
    auto x = b.input({1, 32});
    auto h = b.matmul(x, 64, "fc1", false);
    h = b.activation(h, OpKind::GeLU, "act");
    b.matmul(h, 32, "fc2", false);
    Graph g = b.build();

    EXPECT_EQ(g.layerCount(), 4u);
    EXPECT_EQ(g.weightCount(), 2u);
    EXPECT_EQ(g.totalWeightBytes(), (32u * 64 + 64u * 32) * 2);
    EXPECT_EQ(g.peakActivationBytes(), 64u * 2);
}

TEST(Graph, FusedKindsDefaultSingleton)
{
    GraphBuilder b("toy", Precision::FP16);
    auto x = b.input({1, 8});
    auto y = b.activation(x, OpKind::ReLU, "r");
    Graph g = b.build();
    EXPECT_EQ(g.node(y).fusedKinds.size(), 1u);
    EXPECT_FALSE(g.node(y).isFused());
}

// Property-style sweep: matmul MACs scale linearly in each dimension.
class MatmulMacsProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(MatmulMacsProperty, LinearScaling)
{
    int scale = GetParam();
    GraphBuilder b("p", Precision::FP16);
    auto x = b.input({1, 16, static_cast<std::int64_t>(32) * scale});
    b.matmul(x, 64, "fc", false);
    Graph g = b.build();
    EXPECT_EQ(g.totalMacs(), 16ull * 32 * scale * 64);
}

INSTANTIATE_TEST_SUITE_P(Scales, MatmulMacsProperty,
                         ::testing::Values(1, 2, 4, 8, 16));

} // namespace
} // namespace flashmem::graph
