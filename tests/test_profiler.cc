/**
 * @file
 * Tests for the profiler: GBT regressor correctness, feature extraction,
 * and the analytic/learned load-capacity providers.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hh"
#include "gpusim/device.hh"
#include "gpusim/kernel.hh"
#include "models/model_zoo.hh"
#include "profiler/capacity.hh"
#include "profiler/features.hh"
#include "profiler/gbt.hh"

namespace flashmem::profiler {
namespace {

using graph::OpClass;
using graph::OpKind;
using gpusim::DeviceProfile;
using gpusim::KernelModel;
using gpusim::KernelSpec;

// -------------------------------------------------------------------- GBT

TEST(Gbt, FitsLinearFunction)
{
    Rng rng(1);
    std::vector<std::vector<double>> x;
    std::vector<double> y;
    for (int i = 0; i < 400; ++i) {
        double a = rng.uniform(0, 10), b = rng.uniform(0, 10);
        x.push_back({a, b});
        y.push_back(3.0 * a - 2.0 * b + 5.0);
    }
    GbtRegressor gbt;
    gbt.fit(x, y);
    EXPECT_GT(gbt.r2(x, y), 0.97);
    EXPECT_NEAR(gbt.predict({5.0, 5.0}), 10.0, 1.5);
}

TEST(Gbt, FitsNonlinearInteraction)
{
    Rng rng(2);
    std::vector<std::vector<double>> x;
    std::vector<double> y;
    for (int i = 0; i < 600; ++i) {
        double a = rng.uniform(0, 4), b = rng.uniform(0, 4);
        x.push_back({a, b});
        y.push_back(a * b + std::sin(a)); // multiplicative interaction
    }
    GbtRegressor gbt;
    gbt.fit(x, y);
    EXPECT_GT(gbt.r2(x, y), 0.95);
}

TEST(Gbt, RobustToLabelNoise)
{
    Rng rng(3);
    std::vector<std::vector<double>> x, xt;
    std::vector<double> y, yt;
    for (int i = 0; i < 500; ++i) {
        double a = rng.uniform(0, 10);
        x.push_back({a});
        y.push_back(2.0 * a + rng.gaussian(0.0, 0.5));
    }
    for (int i = 0; i < 100; ++i) {
        double a = rng.uniform(0, 10);
        xt.push_back({a});
        yt.push_back(2.0 * a);
    }
    GbtRegressor gbt;
    gbt.fit(x, y);
    EXPECT_LT(gbt.rmse(xt, yt), 1.0);
}

TEST(Gbt, PredictBeforeFitDies)
{
    GbtRegressor gbt;
    EXPECT_DEATH(gbt.predict({1.0}), "before fit");
}

TEST(Gbt, RejectsRaggedMatrix)
{
    GbtRegressor gbt;
    std::vector<std::vector<double>> x = {{1.0, 2.0}, {3.0}};
    std::vector<double> y = {1.0, 2.0};
    EXPECT_DEATH(gbt.fit(x, y), "ragged");
}

TEST(Gbt, DeterministicAcrossRuns)
{
    Rng rng(4);
    std::vector<std::vector<double>> x;
    std::vector<double> y;
    for (int i = 0; i < 200; ++i) {
        double a = rng.uniform(0, 5);
        x.push_back({a, a * a});
        y.push_back(a * 3.0);
    }
    GbtRegressor g1, g2;
    g1.fit(x, y);
    g2.fit(x, y);
    for (double probe = 0.0; probe < 5.0; probe += 0.5)
        EXPECT_DOUBLE_EQ(g1.predict({probe, probe * probe}),
                         g2.predict({probe, probe * probe}));
}

TEST(Gbt, FitRejectsEmptyTrainingSets)
{
    GbtRegressor gbt;
    EXPECT_DEATH(gbt.fit({}, {}), "bad training set");
    EXPECT_DEATH(gbt.fit({{1.0}}, {1.0, 2.0}), "bad training set");
    EXPECT_DEATH(gbt.fit({{}, {}}, {1.0, 2.0}), "empty feature rows");
}

TEST(Gbt, PredictRejectsDimensionMismatch)
{
    // A silent mismatch would read whatever feature happens to sit at
    // the tree's split index — plausible garbage, not an error. The
    // regressor records the trained width and dies loudly instead.
    GbtRegressor gbt;
    gbt.fit({{1.0, 2.0}, {3.0, 4.0}}, {1.0, 2.0});
    EXPECT_EQ(gbt.featureCount(), 2u);
    EXPECT_DEATH(gbt.predict({}), "dimension mismatch");
    EXPECT_DEATH(gbt.predict({1.0}), "dimension mismatch");
    EXPECT_DEATH(gbt.predict({1.0, 2.0, 3.0}), "dimension mismatch");
}

TEST(Gbt, MetricsRejectEmptyAndRaggedEvaluationSets)
{
    GbtRegressor gbt;
    std::vector<std::vector<double>> x = {{1.0}, {2.0}};
    std::vector<double> y = {1.0, 2.0};
    gbt.fit(x, y);
    EXPECT_DEATH(gbt.rmse({}, {}), "empty evaluation set");
    EXPECT_DEATH(gbt.rmse(x, {1.0}), "rows vs");
    EXPECT_DEATH(gbt.r2({}, {}), "empty evaluation set");
    EXPECT_DEATH(gbt.r2(x, {1.0}), "rows vs");
}

// --------------------------------------------------------------- features

TEST(Features, AlignedWithNames)
{
    KernelSpec spec;
    spec.kind = OpKind::MatMul;
    spec.macs = 1000;
    spec.inputBytes = 2048;
    spec.outputBytes = 1024;
    auto f = kernelFeatures(spec, 0.5);
    EXPECT_EQ(f.size(), kernelFeatureNames().size());
    // One-hot class flags: matmul is reusable.
    EXPECT_DOUBLE_EQ(f[0], 0.0);
    EXPECT_DOUBLE_EQ(f[1], 1.0);
    // Extra ratio is the last feature.
    EXPECT_DOUBLE_EQ(f.back(), 0.5);
}

TEST(Features, ClassOneHotExclusive)
{
    for (auto kind : {OpKind::Add, OpKind::MatMul, OpKind::Softmax,
                      OpKind::Reshape}) {
        KernelSpec spec;
        spec.kind = kind;
        auto f = kernelFeatures(spec, 0.0);
        EXPECT_DOUBLE_EQ(f[0] + f[1] + f[2] + f[3], 1.0);
    }
}

// --------------------------------------------------------------- capacity

KernelSpec
specOf(OpKind kind, std::uint64_t macs, Bytes in, Bytes out, Bytes w)
{
    KernelSpec s;
    s.kind = kind;
    s.macs = macs;
    s.inputBytes = in;
    s.outputBytes = out;
    s.weightBytes = w;
    s.pipelined = true;
    return s;
}

TEST(AnalyticCapacity, HierarchicalGetsZero)
{
    KernelModel km(DeviceProfile::onePlus12());
    AnalyticCapacityProvider cap(km);
    auto sm = specOf(OpKind::Softmax, 1 << 20, mib(4), mib(4), 0);
    EXPECT_EQ(cap.capacityBytes(sm), 0u);
    EXPECT_EQ(cap.capacityChunks(sm, mib(1)), 0);
}

TEST(AnalyticCapacity, OrderingMatchesTable5)
{
    KernelModel km(DeviceProfile::onePlus12());
    AnalyticCapacityProvider cap(km);
    // Table 5: L.C. tolerance — Reusable High, Elemental Medium,
    // Hierarchical Low. Compare same-traffic kernels.
    auto mm = specOf(OpKind::MatMul, 1ull << 31, mib(8), mib(8), mib(16));
    auto add = specOf(OpKind::Add, 0, mib(8), mib(8), 0);
    auto sm = specOf(OpKind::Softmax, 1 << 22, mib(8), mib(8), 0);
    EXPECT_GT(cap.capacityBytes(mm), cap.capacityBytes(add));
    EXPECT_GT(cap.capacityBytes(add), cap.capacityBytes(sm));
}

TEST(AnalyticCapacity, ChunksRoundDown)
{
    KernelModel km(DeviceProfile::onePlus12());
    AnalyticCapacityProvider cap(km);
    auto add = specOf(OpKind::Add, 0, mib(8), mib(8), 0);
    Bytes bytes = cap.capacityBytes(add);
    auto chunks = cap.capacityChunks(add, mib(1));
    EXPECT_EQ(chunks, static_cast<std::int64_t>(bytes / mib(1)));
}

class LearnedCapacityFixture : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        device_ = new DeviceProfile(DeviceProfile::onePlus12());
        model_ = new KernelModel(*device_);
        provider_ = new LearnedCapacityProvider(*model_);
        // Profile a representative mixed-operator model (paper: >10
        // models; one ViT keeps this test fast while covering all
        // operator classes).
        graph_ = new graph::Graph(
            models::buildModel(models::ModelId::ViT));
        provider_->profileAndFit({graph_});
    }

    static void
    TearDownTestSuite()
    {
        delete provider_;
        delete graph_;
        delete model_;
        delete device_;
        provider_ = nullptr;
        graph_ = nullptr;
        model_ = nullptr;
        device_ = nullptr;
    }

    static DeviceProfile *device_;
    static KernelModel *model_;
    static LearnedCapacityProvider *provider_;
    static graph::Graph *graph_;
};

DeviceProfile *LearnedCapacityFixture::device_ = nullptr;
KernelModel *LearnedCapacityFixture::model_ = nullptr;
LearnedCapacityProvider *LearnedCapacityFixture::provider_ = nullptr;
graph::Graph *LearnedCapacityFixture::graph_ = nullptr;

TEST_F(LearnedCapacityFixture, HoldoutAccuracyHigh)
{
    EXPECT_TRUE(provider_->trained());
    EXPECT_GT(provider_->sampleCount(), 1000u);
    EXPECT_GT(provider_->holdoutR2(), 0.90);
}

TEST_F(LearnedCapacityFixture, PredictionsTrackGroundTruth)
{
    // Compare predicted latency to the simulator on in-distribution
    // kernels at unseen ratios.
    int checked = 0;
    double rel_err_sum = 0.0;
    for (const auto &node : graph_->nodes()) {
        if (node.id % 97 != 0)
            continue;
        auto spec = gpusim::kernelSpecFor(*graph_, node.id, true);
        spec.pipelined = true;
        for (double ratio : {0.4, 1.1}) {
            auto extra = static_cast<Bytes>(
                ratio * static_cast<double>(spec.inputBytes));
            double truth =
                toMilliseconds(model_->latencyWithLoad(spec, extra));
            double pred = provider_->predictLatencyMs(spec, ratio);
            if (truth > 1e-3) {
                rel_err_sum += std::abs(pred - truth) / truth;
                ++checked;
            }
        }
    }
    ASSERT_GT(checked, 4);
    EXPECT_LT(rel_err_sum / checked, 0.35);
}

TEST_F(LearnedCapacityFixture, HierarchicalCapacityZero)
{
    auto sm = specOf(OpKind::Softmax, 1 << 20, mib(2), mib(2), 0);
    EXPECT_EQ(provider_->capacityBytes(sm), 0u);
}

TEST_F(LearnedCapacityFixture, CapacityWithinSaneBounds)
{
    for (const auto &node : graph_->nodes()) {
        if (node.id % 53 != 0)
            continue;
        auto spec = gpusim::kernelSpecFor(*graph_, node.id, true);
        spec.pipelined = true;
        Bytes cap = provider_->capacityBytes(spec);
        EXPECT_LE(cap, mib(256));
    }
}

TEST_F(LearnedCapacityFixture, ReusableKernelsDominateCapacity)
{
    // Aggregate capacity: big matmuls should contribute far more
    // schedulable load than hierarchical ops (which contribute zero).
    Bytes reusable_cap = 0, hierarchical_cap = 0;
    for (const auto &node : graph_->nodes()) {
        auto spec = gpusim::kernelSpecFor(*graph_, node.id, true);
        spec.pipelined = true;
        if (spec.cls() == OpClass::Reusable)
            reusable_cap += provider_->capacityBytes(spec);
        else if (spec.cls() == OpClass::Hierarchical)
            hierarchical_cap += provider_->capacityBytes(spec);
    }
    EXPECT_EQ(hierarchical_cap, 0u);
    EXPECT_GT(reusable_cap, mib(10));
}

TEST(CapacityThresholds, PaperDefaults)
{
    CapacityThresholds t;
    EXPECT_DOUBLE_EQ(t.forClass(OpClass::Elemental), 3.0);
    EXPECT_DOUBLE_EQ(t.forClass(OpClass::Reusable), 0.2);
    EXPECT_DOUBLE_EQ(t.forClass(OpClass::Hierarchical), 0.0);
}

} // namespace
} // namespace flashmem::profiler
