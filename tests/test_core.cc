/**
 * @file
 * Tests for the FlashMem core: weight slicing, overlap-plan invariants
 * and serialization, LC-OPG planning (C0-C4), adaptive fusion, kernel
 * rewriting, the streaming runtime, and the facade's ablation behaviour.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <set>
#include <thread>

#include "common/rng.hh"
#include "common/thread_pool.hh"
#include "core/flashmem.hh"
#include "core/fusion.hh"
#include "core/kernel_rewriter.hh"
#include "core/lc_opg.hh"
#include "core/overlap_plan.hh"
#include "core/runtime.hh"
#include "core/weight_slicer.hh"
#include "graph/builder.hh"
#include "models/model_zoo.hh"

namespace flashmem::core {
namespace {

using graph::GraphBuilder;
using graph::OpKind;
using gpusim::DeviceProfile;
using gpusim::GpuSimulator;
using gpusim::KernelModel;

/** Small transformer-ish graph for focused tests. */
graph::Graph
toyGraph(int blocks = 3, std::int64_t d = 256, std::int64_t tokens = 64)
{
    GraphBuilder b("toy", Precision::FP16);
    auto x = b.input({tokens, d});
    for (int i = 0; i < blocks; ++i) {
        std::string p = "blk" + std::to_string(i);
        auto n = b.layerNorm(x, p + ".ln");
        auto h = b.matmul(n, 4 * d, p + ".fc1");
        h = b.activation(h, OpKind::GeLU, p + ".act");
        h = b.matmul(h, d, p + ".fc2");
        x = b.add(x, h, p + ".res");
    }
    return b.build();
}

// ----------------------------------------------------------- WeightSlicer

TEST(WeightSlicer, ChunkCounts)
{
    WeightSlicer s(mib(1));
    EXPECT_EQ(s.chunkCount(Bytes{0}), 0);
    EXPECT_EQ(s.chunkCount(mib(1)), 1);
    EXPECT_EQ(s.chunkCount(mib(1) + 1), 2);
    EXPECT_EQ(s.chunkCount(mib(16)), 16);
}

TEST(WeightSlicer, BytesForChunksHandlesShortTail)
{
    graph::Graph g("t", Precision::FP16);
    graph::Node n;
    n.name = "n";
    n.kind = OpKind::MatMul;
    n.output = graph::TensorDesc{{1}, Precision::FP16};
    g.addNode(n);
    // 2.5 MiB weight -> 3 chunks of 1 MiB.
    g.attachWeight(0, {{1310720, 1}, Precision::FP16}, "w");

    WeightSlicer s(mib(1));
    const auto &w = g.weight(0);
    EXPECT_EQ(s.chunkCount(w), 3);
    EXPECT_EQ(s.bytesForChunks(w, 0), 0u);
    EXPECT_EQ(s.bytesForChunks(w, 2), mib(2));
    EXPECT_EQ(s.bytesForChunks(w, 3), w.bytes()); // exact tail
}

TEST(WeightSlicer, TotalChunksSumsGraph)
{
    auto g = toyGraph(2);
    WeightSlicer s(kib(64));
    std::int64_t manual = 0;
    for (const auto &w : g.weights())
        manual += s.chunkCount(w);
    EXPECT_EQ(s.totalChunks(g), manual);
}

// ------------------------------------------------------------ OverlapPlan

TEST(OverlapPlan, ValidatesCompleteCoverage)
{
    auto g = toyGraph(1);
    OverlapPlan plan(g, mib(1));
    WeightSlicer s(mib(1));
    // Preload everything: trivially valid.
    for (const auto &w : g.weights())
        plan.setPreloadChunks(w.id, s.chunkCount(w));
    EXPECT_TRUE(plan.validate(g, false));
}

TEST(OverlapPlan, RejectsMissingChunks)
{
    auto g = toyGraph(1);
    OverlapPlan plan(g, mib(1));
    // Leave every weight unassigned: C0 violated.
    EXPECT_FALSE(plan.validate(g, false));
}

TEST(OverlapPlan, RejectsTransformAtConsumer)
{
    auto g = toyGraph(1);
    OverlapPlan plan(g, mib(1));
    WeightSlicer s(mib(1));
    const auto &w0 = g.weights().front();
    for (const auto &w : g.weights())
        plan.setPreloadChunks(w.id, s.chunkCount(w));
    // Shift one chunk onto the consumer itself: invalid.
    plan.setPreloadChunks(w0.id, s.chunkCount(w0) - 1);
    plan.addAssignment(w0.id, w0.consumer, 1);
    plan.setEarliestLoad(w0.id, w0.consumer);
    EXPECT_FALSE(plan.validate(g, false));
}

TEST(OverlapPlan, RejectsC1Violation)
{
    auto g = toyGraph(2);
    OverlapPlan plan(g, mib(1));
    WeightSlicer s(mib(1));
    // Find a weight consumed late enough to have room.
    const graph::Weight *w = nullptr;
    for (const auto &cand : g.weights()) {
        if (cand.consumer >= 4)
            w = &cand;
    }
    ASSERT_NE(w, nullptr);
    for (const auto &other : g.weights())
        plan.setPreloadChunks(other.id, s.chunkCount(other));
    plan.setPreloadChunks(w->id, s.chunkCount(*w) - 1);
    plan.addAssignment(w->id, w->consumer - 2, 1);
    // z_w after the first transforming layer: C1 violated.
    plan.setEarliestLoad(w->id, w->consumer - 1);
    EXPECT_FALSE(plan.validate(g, false));
}

TEST(OverlapPlan, SerializationRoundTrip)
{
    auto g = toyGraph(2);
    KernelModel km(DeviceProfile::onePlus12());
    profiler::AnalyticCapacityProvider cap(km);
    OpgParams params;
    params.chunkBytes = kib(256);
    LcOpgPlanner planner(g, cap, km, params);
    auto plan = planner.plan();

    auto restored = OverlapPlan::deserialize(plan.serialize());
    EXPECT_TRUE(restored.validate(g, false));
    EXPECT_EQ(restored.chunkBytes(), plan.chunkBytes());
    EXPECT_EQ(restored.preloadBytes(g), plan.preloadBytes(g));
    EXPECT_DOUBLE_EQ(restored.overlapFraction(g),
                     plan.overlapFraction(g));
}

// --------------------------------------------------------------- LC-OPG

class LcOpgOnModels
    : public ::testing::TestWithParam<models::ModelId>
{
};

TEST_P(LcOpgOnModels, ProducesValidPlan)
{
    auto g = models::buildModel(GetParam());
    KernelModel km(DeviceProfile::onePlus12());
    profiler::AnalyticCapacityProvider cap(km);
    PlanStats stats;
    LcOpgPlanner planner(g, cap, km);
    auto plan = planner.plan(&stats);

    EXPECT_TRUE(plan.validate(g, false));
    EXPECT_GT(stats.windows, 0);
    // Some weights must stream (the whole point of FlashMem).
    EXPECT_GT(plan.overlapFraction(g), 0.2);
}

INSTANTIATE_TEST_SUITE_P(Zoo, LcOpgOnModels,
                         ::testing::Values(models::ModelId::GPTNeoS,
                                           models::ModelId::ViT,
                                           models::ModelId::ResNet50,
                                           models::ModelId::
                                               WhisperMedium));

TEST(LcOpg, RespectsLayerCapacities)
{
    auto g = toyGraph(6);
    KernelModel km(DeviceProfile::onePlus12());
    profiler::AnalyticCapacityProvider cap(km);
    OpgParams params;
    params.chunkBytes = kib(128);
    LcOpgPlanner planner(g, cap, km, params);
    auto plan = planner.plan();

    WeightSlicer slicer(params.chunkBytes);
    for (graph::NodeId l = 0;
         l < static_cast<graph::NodeId>(g.layerCount()); ++l) {
        std::int64_t assigned = 0;
        for (const auto &a : plan.assignmentsAt(l))
            assigned += a.chunks;
        auto spec = gpusim::kernelSpecFor(g, l, true);
        spec.pipelined = true;
        EXPECT_LE(assigned,
                  cap.capacityChunks(spec, params.chunkBytes))
            << "layer " << l;
    }
}

TEST(LcOpg, RespectsMPeakInFlightBound)
{
    auto g = toyGraph(6);
    KernelModel km(DeviceProfile::onePlus12());
    profiler::AnalyticCapacityProvider cap(km);
    OpgParams params;
    params.chunkBytes = kib(128);
    params.mPeak = kib(512); // 4 chunks of headroom only
    LcOpgPlanner planner(g, cap, km, params);
    auto plan = planner.plan();
    EXPECT_TRUE(plan.validate(g, false));

    // Reconstruct in-flight occupancy: chunks transformed at <= p for
    // weights consumed after p.
    const auto layers = static_cast<graph::NodeId>(g.layerCount());
    for (graph::NodeId p = 0; p < layers; ++p) {
        std::int64_t inflight = 0;
        for (graph::NodeId l = 0; l <= p; ++l) {
            for (const auto &a : plan.assignmentsAt(l)) {
                if (g.weight(a.weight).consumer > p)
                    inflight += a.chunks;
            }
        }
        EXPECT_LE(inflight, 4) << "layer " << p;
    }
}

TEST(LcOpg, TinyMPeakForcesPreload)
{
    auto g = toyGraph(4);
    KernelModel km(DeviceProfile::onePlus12());
    profiler::AnalyticCapacityProvider cap(km);
    OpgParams strict;
    strict.mPeak = 0; // no streaming headroom at all
    LcOpgPlanner planner(g, cap, km, strict);
    auto plan = planner.plan();
    EXPECT_TRUE(plan.validate(g, false));
    EXPECT_DOUBLE_EQ(plan.overlapFraction(g), 0.0);
}

TEST(LcOpg, LargerMPeakNeverReducesOverlap)
{
    auto g = toyGraph(5);
    KernelModel km(DeviceProfile::onePlus12());
    profiler::AnalyticCapacityProvider cap(km);

    double prev = -1.0;
    for (Bytes mpeak : {mib(2), mib(16), mib(128), mib(512)}) {
        OpgParams params;
        params.mPeak = mpeak;
        LcOpgPlanner planner(g, cap, km, params);
        auto plan = planner.plan();
        double frac = plan.overlapFraction(g);
        EXPECT_GE(frac + 1e-9, prev) << "mPeak " << mpeak;
        prev = frac;
    }
}

TEST(LcOpg, FirstLayerWeightsArePreloaded)
{
    // Weights consumed by the very first weighted layer have no earlier
    // layers to transform them: they must join W (paper Section 3.1.1).
    GraphBuilder b("front", Precision::FP16);
    auto x = b.input({64, 256});
    b.matmul(x, 256, "first_fc");
    auto g = b.build();

    KernelModel km(DeviceProfile::onePlus12());
    profiler::AnalyticCapacityProvider cap(km);
    LcOpgPlanner planner(g, cap, km);
    auto plan = planner.plan();
    WeightSlicer slicer(plan.chunkBytes());
    for (const auto &w : g.weights()) {
        if (w.consumer <= 1) {
            EXPECT_EQ(plan.schedule(w.id).preloadChunks,
                      slicer.chunkCount(w));
        }
    }
}

TEST(LcOpg, StatsAccountAllWindows)
{
    auto g = models::buildModel(models::ModelId::ViT);
    KernelModel km(DeviceProfile::onePlus12());
    profiler::AnalyticCapacityProvider cap(km);
    PlanStats stats;
    LcOpgPlanner planner(g, cap, km);
    planner.plan(&stats);
    EXPECT_EQ(stats.windows,
              stats.optimalWindows + stats.feasibleWindows +
                  stats.greedyWindows);
    EXPECT_GT(stats.solveSeconds, 0.0);
    EXPECT_GT(stats.processNodesSeconds, 0.0);
}

// --------------------------------------------------------------- PlanMemo

TEST(PlanMemo, StoreLookupAndStats)
{
    PlanMemo memo(4);
    EXPECT_FALSE(memo.lookup(42).has_value());
    EXPECT_TRUE(memo.store(42, {1, 2, 3}, 10));
    auto hit = memo.lookup(42);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(*hit, (std::vector<std::int64_t>{1, 2, 3}));
    EXPECT_EQ(memo.stats().hits, 1u);
    EXPECT_EQ(memo.stats().misses, 1u);
    EXPECT_EQ(memo.stats().stores, 1u);
}

TEST(PlanMemo, KeepsBetterIncumbent)
{
    PlanMemo memo(4);
    EXPECT_TRUE(memo.store(7, {5}, 50));
    EXPECT_FALSE(memo.store(7, {9}, 90)); // worse: ignored
    EXPECT_EQ(*memo.lookup(7), (std::vector<std::int64_t>{5}));
    EXPECT_TRUE(memo.store(7, {3}, 30)); // better: replaces
    EXPECT_EQ(*memo.lookup(7), (std::vector<std::int64_t>{3}));
}

TEST(PlanMemo, EvictsLeastRecentlyUsed)
{
    PlanMemo memo(2);
    memo.store(1, {1}, 1);
    memo.store(2, {2}, 2);
    EXPECT_TRUE(memo.lookup(1).has_value()); // 1 is now most recent
    memo.store(3, {3}, 3);                   // evicts 2
    EXPECT_EQ(memo.size(), 2u);
    EXPECT_TRUE(memo.lookup(1).has_value());
    EXPECT_FALSE(memo.lookup(2).has_value());
    EXPECT_TRUE(memo.lookup(3).has_value());
    EXPECT_EQ(memo.stats().evictions, 1u);
}

TEST(LcOpg, PlanMemoWarmStartReproducesPlan)
{
    // Small graph so every window solves to OPTIMAL: only then is
    // byte-identical replanning guaranteed (on budget-truncated
    // windows a warm start may legitimately find a better plan).
    auto g = toyGraph(3);
    KernelModel km(DeviceProfile::onePlus12());
    profiler::AnalyticCapacityProvider cap(km);
    OpgParams params;
    params.chunkBytes = kib(256);
    // Budget generous enough to exhaust the window (~226k decisions).
    params.solverDecisionsPerWindow = 2000000;
    params.solverTimePerWindow = 10.0;

    PlanMemo::global().clear();
    PlanStats cold, warm;
    std::string cold_plan, warm_plan;
    {
        LcOpgPlanner planner(g, cap, km, params);
        cold_plan = planner.plan(&cold).serialize();
    }
    {
        LcOpgPlanner planner(g, cap, km, params);
        warm_plan = planner.plan(&warm).serialize();
    }
    ASSERT_EQ(cold.overallStatus, solver::SolveStatus::Optimal);
    EXPECT_EQ(cold.memoHits, 0u);
    EXPECT_GT(cold.memoStores, 0u);
    EXPECT_GT(warm.memoHits, 0u);
    // Warm starts are hints, not shortcuts: the optimal plan is
    // reproduced exactly.
    EXPECT_EQ(cold_plan, warm_plan);
}

TEST(LcOpg, PlanMemoDisabledStillMatches)
{
    auto g = toyGraph(4);
    KernelModel km(DeviceProfile::onePlus12());
    profiler::AnalyticCapacityProvider cap(km);

    PlanMemo::global().clear();
    OpgParams with_memo;
    OpgParams no_memo;
    no_memo.planMemo = false;

    LcOpgPlanner p1(g, cap, km, with_memo);
    auto plan1 = p1.plan();
    PlanStats s2;
    LcOpgPlanner p2(g, cap, km, no_memo);
    auto plan2 = p2.plan(&s2);
    EXPECT_EQ(s2.memoHits, 0u);
    EXPECT_EQ(plan1.serialize(), plan2.serialize());
}

TEST(LcOpg, BaselineSolverEngineProducesValidPlan)
{
    auto g = toyGraph(3);
    KernelModel km(DeviceProfile::onePlus12());
    profiler::AnalyticCapacityProvider cap(km);
    OpgParams params;
    params.solverEngine = solver::SearchEngine::Baseline;
    params.planMemo = false;
    LcOpgPlanner planner(g, cap, km, params);
    auto plan = planner.plan();
    EXPECT_TRUE(plan.validate(g, false));
}

// ----------------------------------------- Parallel window planning

TEST(LcOpg, ParallelPlansAreByteIdentical)
{
    auto g = models::buildModel(models::ModelId::ViT);
    KernelModel km(DeviceProfile::onePlus12());
    profiler::AnalyticCapacityProvider cap(km);

    const int hw = ThreadPool::defaultThreadCount();
    std::vector<int> arms = {1, 4};
    if (hw != 1 && hw != 4)
        arms.push_back(hw);

    std::string ref;
    std::uint64_t ref_decisions = 0;
    for (int threads : arms) {
        // Equal footing per arm: warm starts could legally improve
        // budget-truncated windows and spoil the byte comparison.
        PlanMemo::global().clear();
        OpgParams params;
        params.parallel.threads = threads;
        LcOpgPlanner planner(g, cap, km, params);
        PlanStats stats;
        auto s = planner.plan(&stats).serialize();
        EXPECT_EQ(stats.threads, threads);
        if (ref.empty()) {
            ref = s;
            ref_decisions = stats.solverDecisions;
        }
        EXPECT_EQ(s, ref) << "threads=" << threads;
        EXPECT_EQ(stats.solverDecisions, ref_decisions)
            << "threads=" << threads;
    }
    PlanMemo::global().clear();
}

TEST(LcOpg, ParallelPlansWithRestartsAreByteIdentical)
{
    auto g = toyGraph(6);
    KernelModel km(DeviceProfile::onePlus12());
    profiler::AnalyticCapacityProvider cap(km);

    std::string ref;
    solver::SolveStatus ref_status = solver::SolveStatus::Unknown;
    for (int threads : {1, 4}) {
        PlanMemo::global().clear();
        OpgParams params;
        params.chunkBytes = kib(256);
        params.restartConflictBase = 256;
        params.parallel.threads = threads;
        LcOpgPlanner planner(g, cap, km, params);
        PlanStats stats;
        auto s = planner.plan(&stats).serialize();
        if (ref.empty()) {
            ref = s;
            ref_status = stats.overallStatus;
        }
        EXPECT_EQ(s, ref) << "threads=" << threads;
        EXPECT_EQ(stats.overallStatus, ref_status);
    }
    PlanMemo::global().clear();
}

// ------------------------------------- Merge re-balancing + re-planning

TEST(LcOpg, MergeRebalanceTopsUpTruncatedWindows)
{
    // Under the latency-priority configuration some windows preload
    // chunks even though earlier windows reserved capacity greedily
    // and did not use it; the second merge pass moves those chunks
    // back into the stream. Isolated memos keep the arms independent.
    auto g = models::buildModel(models::ModelId::GPTNeoS);
    KernelModel km(DeviceProfile::onePlus12());
    profiler::AnalyticCapacityProvider cap(km);

    OpgParams params;
    params.mPeak = mib(1024);
    params.lambda = 0.5;
    params.restartConflictBase = 1024;

    PlanMemo memo_off(1024), memo_on(1024);
    params.mergeRebalance = false;
    params.memo = &memo_off;
    PlanStats off_stats;
    LcOpgPlanner off(g, cap, km, params);
    auto plan_off = off.plan(&off_stats);

    params.mergeRebalance = true;
    params.memo = &memo_on;
    PlanStats on_stats;
    LcOpgPlanner on(g, cap, km, params);
    auto plan_on = on.plan(&on_stats);

    EXPECT_EQ(off_stats.rebalancedChunks, 0);
    EXPECT_GT(on_stats.rebalancedChunks, 0);
    EXPECT_GT(on_stats.rebalancedWeights, 0);
    // Top-ups only ever shrink the preload set, and the plan stays
    // valid against C0/C1 (validate) and C2/C3 (the ledgers).
    EXPECT_TRUE(plan_on.validate(g, false));
    EXPECT_LT(plan_on.preloadBytes(g), plan_off.preloadBytes(g));
    EXPECT_GT(plan_on.overlapFraction(g), plan_off.overlapFraction(g));
}

TEST(LcOpg, RebalancedPlanRespectsCapacitiesAndInflight)
{
    // The topped-up plan must still satisfy per-layer load capacities
    // (C3) and the in-flight bound (C2), reconstructed independently.
    auto g = models::buildModel(models::ModelId::GPTNeoS);
    KernelModel km(DeviceProfile::onePlus12());
    profiler::AnalyticCapacityProvider cap(km);
    OpgParams params;
    params.mPeak = mib(1024);
    params.lambda = 0.5;
    params.restartConflictBase = 1024;
    PlanMemo memo(1024);
    params.memo = &memo;
    PlanStats stats;
    LcOpgPlanner planner(g, cap, km, params);
    auto plan = planner.plan(&stats);
    ASSERT_GT(stats.rebalancedChunks, 0);

    const auto layers = static_cast<graph::NodeId>(g.layerCount());
    const std::int64_t mpeak_chunks = static_cast<std::int64_t>(
        params.mPeak / params.chunkBytes);
    std::vector<std::int64_t> per_layer(layers, 0);
    for (graph::NodeId l = 0; l < layers; ++l) {
        for (const auto &a : plan.assignmentsAt(l))
            per_layer[l] += a.chunks;
        auto spec = gpusim::kernelSpecFor(g, l, true);
        spec.pipelined = true;
        EXPECT_LE(per_layer[l],
                  cap.capacityChunks(spec, params.chunkBytes))
            << "layer " << l;
    }
    std::int64_t worst_inflight = 0;
    for (graph::NodeId p = 0; p < layers; ++p) {
        std::int64_t inflight = 0;
        for (graph::NodeId l = 0; l <= p; ++l) {
            for (const auto &a : plan.assignmentsAt(l)) {
                if (g.weight(a.weight).consumer > p)
                    inflight += a.chunks;
            }
        }
        worst_inflight = std::max(worst_inflight, inflight);
    }
    EXPECT_LE(worst_inflight, mpeak_chunks);
}

TEST(LcOpg, ReplanMatchesFreshPlannerAtThatBudget)
{
    // replan() reuses the first plan()'s graph analysis but must reset
    // the capacity/in-flight ledgers: the result has to be
    // byte-identical to a fresh planner constructed at the new budget.
    auto g = toyGraph(3);
    KernelModel km(DeviceProfile::onePlus12());
    profiler::AnalyticCapacityProvider cap(km);
    OpgParams params;
    params.chunkBytes = kib(256);
    params.solverDecisionsPerWindow = 2000000;
    params.solverTimePerWindow = 10.0;

    PlanMemo memo_a(1024), memo_b(1024);
    params.memo = &memo_a;
    LcOpgPlanner planner(g, cap, km, params);
    PlanStats first_stats;
    auto first = planner.plan(&first_stats);
    ASSERT_EQ(first_stats.overallStatus, solver::SolveStatus::Optimal);
    PlanStats replan_stats;
    auto replanned = planner.replan(mib(1), &replan_stats);
    EXPECT_TRUE(replanned.validate(g, false));

    params.memo = &memo_b;
    params.mPeak = mib(1);
    LcOpgPlanner fresh(g, cap, km, params);
    auto expected = fresh.plan();
    EXPECT_EQ(replanned.serialize(), expected.serialize());
    // And re-planning back to the original budget restores the
    // original plan bit for bit.
    auto restored = planner.replan(OpgParams{}.mPeak);
    EXPECT_EQ(restored.serialize(), first.serialize());
}

// ------------------------------------------------ PlanMemo persistence

namespace {

std::string
tempMemoPath(const char *tag)
{
    return testing::TempDir() + "flashmem_memo_" + tag + ".bin";
}

} // namespace

TEST(PlanMemo, SaveLoadRoundTrip)
{
    const auto path = tempMemoPath("roundtrip");
    PlanMemo a(8);
    a.store(11, {1, 2, 3}, 5);
    a.store(22, {4}, 9);
    ASSERT_TRUE(a.saveToFile(path));

    PlanMemo b(8);
    ASSERT_TRUE(b.loadFromFile(path));
    EXPECT_EQ(b.size(), 2u);
    EXPECT_EQ(*b.lookup(11), (std::vector<std::int64_t>{1, 2, 3}));
    EXPECT_EQ(*b.lookup(22), (std::vector<std::int64_t>{4}));
    // Objectives travel too: a worse store is still rejected.
    EXPECT_FALSE(b.store(11, {9, 9, 9}, 50));
    std::remove(path.c_str());
}

TEST(PlanMemo, LoadRejectsMissingCorruptAndWrongVersionFiles)
{
    PlanMemo memo(8);
    memo.store(1, {7}, 7);

    EXPECT_FALSE(memo.loadFromFile(tempMemoPath("does_not_exist")));

    const auto garbage = tempMemoPath("garbage");
    {
        std::ofstream out(garbage, std::ios::binary);
        out << "definitely not a memo file";
    }
    EXPECT_FALSE(memo.loadFromFile(garbage));

    // Valid magic, unsupported version.
    const auto wrong_version = tempMemoPath("wrong_version");
    {
        std::ofstream out(wrong_version, std::ios::binary);
        std::uint32_t magic = 0x464D504D, version = 999;
        char buf[sizeof(magic)];
        std::memcpy(buf, &magic, sizeof buf);
        out.write(buf, sizeof buf);
        std::memcpy(buf, &version, sizeof buf);
        out.write(buf, sizeof buf);
    }
    EXPECT_FALSE(memo.loadFromFile(wrong_version));

    // Header claims entries the file does not contain.
    const auto truncated = tempMemoPath("truncated");
    {
        PlanMemo src(8);
        src.store(5, {1, 2, 3, 4, 5}, 0);
        ASSERT_TRUE(src.saveToFile(truncated));
        std::ifstream in(truncated, std::ios::binary);
        std::string bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
        std::ofstream out(truncated,
                          std::ios::binary | std::ios::trunc);
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size() - 8));
    }
    EXPECT_FALSE(memo.loadFromFile(truncated));

    // Every failed load left the memo untouched.
    EXPECT_EQ(memo.size(), 1u);
    EXPECT_TRUE(memo.lookup(1).has_value());

    std::remove(garbage.c_str());
    std::remove(wrong_version.c_str());
    std::remove(truncated.c_str());
}

TEST(PlanMemo, ChecksumRejectsBitFlipsAnywhere)
{
    const auto path = tempMemoPath("bitflip");
    PlanMemo src(8);
    src.store(0xAAAA, {10, 20, 30, 40}, 3);
    src.store(0xBBBB, {-1, -2}, 1);
    ASSERT_TRUE(src.saveToFile(path));

    std::string bytes;
    {
        std::ifstream in(path, std::ios::binary);
        bytes.assign(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
    }
    ASSERT_GT(bytes.size(), 16u);

    // Flip every bit position past the magic+version header, one file
    // at a time. Every flip must be rejected outright — the body is
    // checksummed, so no corruption can load as a valid (let alone
    // partial) plan. Flips inside magic/version are rejected by the
    // header check, exercised by the wrong-version test above.
    PlanMemo memo(8);
    memo.store(1, {7}, 7);
    for (std::size_t byte = 8; byte < bytes.size(); ++byte) {
        for (int bit = 0; bit < 8; ++bit) {
            std::string mutated = bytes;
            mutated[byte] = static_cast<char>(
                static_cast<unsigned char>(mutated[byte]) ^
                (1u << bit));
            {
                std::ofstream out(path,
                                  std::ios::binary | std::ios::trunc);
                out.write(mutated.data(),
                          static_cast<std::streamsize>(
                              mutated.size()));
            }
            EXPECT_FALSE(memo.loadFromFile(path))
                << "flip at byte " << byte << " bit " << bit
                << " loaded as valid";
        }
    }
    // The survivor memo is untouched by all those rejected loads.
    EXPECT_EQ(memo.size(), 1u);
    EXPECT_TRUE(memo.lookup(1).has_value());
    std::remove(path.c_str());
}

TEST(PlanMemo, FuzzedTruncationsAndGarbageColdStartCleanly)
{
    const auto path = tempMemoPath("fuzztrunc");
    PlanMemo src(8);
    src.store(0x1111, {1, 2, 3, 4, 5, 6, 7, 8}, 2);
    src.store(0x2222, {9}, 4);
    src.store(0x3333, {}, 0); // zero-length values vector is legal
    ASSERT_TRUE(src.saveToFile(path));

    std::string bytes;
    {
        std::ifstream in(path, std::ios::binary);
        bytes.assign(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
    }

    PlanMemo memo(8);
    // Every proper prefix — including the zero-length file — must be
    // rejected without crashing or partially loading.
    for (std::size_t len = 0; len < bytes.size(); ++len) {
        {
            std::ofstream out(path,
                              std::ios::binary | std::ios::trunc);
            out.write(bytes.data(),
                      static_cast<std::streamsize>(len));
        }
        EXPECT_FALSE(memo.loadFromFile(path))
            << "prefix of " << len << " bytes loaded as valid";
        EXPECT_EQ(memo.size(), 0u);
    }

    // Random garbage files of assorted sizes, some starting with the
    // real header so they get past the magic check.
    Rng rng(0xF00D);
    for (int trial = 0; trial < 64; ++trial) {
        const auto len = static_cast<std::size_t>(
            rng.uniformInt(0, static_cast<std::int64_t>(
                                  bytes.size() * 2)));
        std::string junk(len, '\0');
        for (auto &c : junk)
            c = static_cast<char>(rng.next() & 0xFF);
        if (trial % 2 == 0 && len >= 8)
            junk.replace(0, 8, bytes, 0, 8); // genuine magic+version
        {
            std::ofstream out(path,
                              std::ios::binary | std::ios::trunc);
            out.write(junk.data(),
                      static_cast<std::streamsize>(junk.size()));
        }
        EXPECT_FALSE(memo.loadFromFile(path))
            << "garbage trial " << trial << " loaded as valid";
        EXPECT_EQ(memo.size(), 0u);
    }

    // And the untouched original still loads fine afterwards.
    {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size()));
    }
    EXPECT_TRUE(memo.loadFromFile(path));
    EXPECT_EQ(memo.size(), 3u);
    std::remove(path.c_str());
}

TEST(PlanMemo, FileBackedMemoPersistsAcrossInstances)
{
    const auto path = tempMemoPath("lifecycle");
    std::remove(path.c_str());
    {
        PlanMemo memo(8, path); // file absent: starts empty
        EXPECT_EQ(memo.size(), 0u);
        memo.store(7, {42, 43}, 1);
    } // destructor saves
    {
        PlanMemo memo(8, path); // constructor loads
        EXPECT_EQ(memo.memoPath(), path);
        auto hit = memo.lookup(7);
        ASSERT_TRUE(hit.has_value());
        EXPECT_EQ(*hit, (std::vector<std::int64_t>{42, 43}));
    }
    std::remove(path.c_str());
}

TEST(LcOpg, FileBackedMemoWarmStartsAcrossLaunches)
{
    auto g = toyGraph(3);
    KernelModel km(DeviceProfile::onePlus12());
    profiler::AnalyticCapacityProvider cap(km);
    OpgParams params;
    params.chunkBytes = kib(256);
    params.solverDecisionsPerWindow = 2000000;
    params.solverTimePerWindow = 10.0;

    const auto path = tempMemoPath("planner");
    std::remove(path.c_str());

    PlanStats first, second;
    std::string first_plan, second_plan;
    {
        // "Launch 1": cold file-backed memo.
        PlanMemo memo(1024, path);
        params.memo = &memo;
        LcOpgPlanner planner(g, cap, km, params);
        first_plan = planner.plan(&first).serialize();
    }
    {
        // "Launch 2": a fresh memo instance loads the saved file.
        PlanMemo memo(1024, path);
        params.memo = &memo;
        LcOpgPlanner planner(g, cap, km, params);
        second_plan = planner.plan(&second).serialize();
    }
    EXPECT_EQ(first.memoHits, 0u);
    EXPECT_GT(first.memoStores, 0u);
    EXPECT_GT(second.memoHits, 0u);
    // All-OPTIMAL windows: the warm-started launch replans exactly.
    ASSERT_EQ(first.overallStatus, solver::SolveStatus::Optimal);
    EXPECT_EQ(first_plan, second_plan);
    std::remove(path.c_str());
}

TEST(PlanMemo, ConcurrentHammer)
{
    PlanMemo memo(32); // small: forces LRU eviction under contention
    constexpr int kThreads = 8;
    constexpr int kOpsPerThread = 4000;
    // FMLINT(allow:cross-thread-state) test-only failure latch: writers only ever increment, final zero-check is order-independent
    std::atomic<std::uint64_t> corrupt{0};

    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t) {
        workers.emplace_back([&memo, &corrupt, t]() {
            Rng rng(1234 + t);
            for (int i = 0; i < kOpsPerThread; ++i) {
                auto fp = static_cast<std::uint64_t>(
                    rng.uniformInt(0, 99));
                if (rng.uniform() < 0.5) {
                    // The value encodes its key, so readers can check
                    // they never observe torn or misfiled entries.
                    std::int64_t obj = rng.uniformInt(0, 1000);
                    memo.store(fp,
                               {static_cast<std::int64_t>(fp), obj},
                               obj);
                } else {
                    auto v = memo.lookup(fp);
                    if (v && (v->size() != 2 ||
                              (*v)[0] !=
                                  static_cast<std::int64_t>(fp)))
                        ++corrupt;
                }
            }
        });
    }
    for (auto &w : workers)
        w.join();

    EXPECT_EQ(corrupt.load(), 0u);
    EXPECT_LE(memo.size(), 32u);
    auto stats = memo.stats();
    EXPECT_GT(stats.stores, 0u);
    EXPECT_GT(stats.evictions, 0u);
    // Entries that survived still satisfy the key-in-value invariant.
    for (std::uint64_t fp = 0; fp < 100; ++fp) {
        auto v = memo.lookup(fp);
        if (v) {
            ASSERT_EQ(v->size(), 2u);
            EXPECT_EQ((*v)[0], static_cast<std::int64_t>(fp));
        }
    }
}

// ----------------------------------------------------------------- Fusion

TEST(Fusion, InitialPartitionCoversGraphOnce)
{
    auto g = toyGraph(3);
    FusionPass fusion(g);
    auto partition = fusion.initialPartition();

    std::set<graph::NodeId> seen;
    for (const auto &grp : partition) {
        for (auto m : grp.members) {
            EXPECT_TRUE(seen.insert(m).second) << "duplicate node " << m;
        }
    }
    EXPECT_EQ(seen.size(), g.layerCount());
}

TEST(Fusion, ChainsAreSingleConsumer)
{
    auto g = toyGraph(3);
    FusionPass fusion(g);
    auto partition = fusion.initialPartition();
    for (const auto &grp : partition) {
        for (std::size_t i = 0; i + 1 < grp.members.size(); ++i) {
            auto consumers = g.consumersOf(grp.members[i]);
            ASSERT_EQ(consumers.size(), 1u);
            EXPECT_EQ(consumers[0], grp.members[i + 1]);
        }
    }
}

TEST(Fusion, MaterializePreservesTotals)
{
    auto g = models::buildModel(models::ModelId::GPTNeoS);
    FusionPass fusion(g);
    auto fused = fusion.materialize(fusion.initialPartition());

    EXPECT_LT(fused.layerCount(), g.layerCount());
    EXPECT_EQ(fused.totalMacs(), g.totalMacs());
    EXPECT_EQ(fused.totalParams(), g.totalParams());
    EXPECT_EQ(fused.totalWeightBytes(), g.totalWeightBytes());
    EXPECT_EQ(fused.weightCount(), g.weightCount());
    EXPECT_TRUE(fused.validate(false));
}

TEST(Fusion, SingletonPartitionIsIdentity)
{
    auto g = toyGraph(2);
    FusionPass fusion(g);
    auto fused = fusion.materialize(fusion.singletonPartition());
    EXPECT_EQ(fused.layerCount(), g.layerCount());
    EXPECT_EQ(fused.totalMacs(), g.totalMacs());
}

TEST(Fusion, RestrictiveKindOrdering)
{
    EXPECT_EQ(FusionPass::restrictiveKind(
                  {OpKind::MatMul, OpKind::GeLU}),
              OpKind::GeLU);
    EXPECT_EQ(FusionPass::restrictiveKind(
                  {OpKind::MatMul, OpKind::Softmax, OpKind::Add}),
              OpKind::Softmax);
    EXPECT_EQ(FusionPass::restrictiveKind({OpKind::MatMul}),
              OpKind::MatMul);
    EXPECT_EQ(FusionPass::restrictiveKind(
                  {OpKind::Reshape, OpKind::Add}),
              OpKind::Reshape);
}

TEST(Fusion, SplitPeelsElementalTail)
{
    // Build matmul -> bias-ish add -> gelu chain and fuse it.
    GraphBuilder b("chain", Precision::FP16);
    auto x = b.input({64, 256});
    auto m = b.matmul(x, 256, "mm", false);
    auto a = b.activation(m, OpKind::GeLU, "gelu");
    auto g = b.build();
    (void)a;

    FusionPass fusion(g);
    FusionGroup grp{{1, 2}}; // matmul, gelu
    FusionGroup head, tail;
    ASSERT_TRUE(fusion.splitGroup(grp, &head, &tail));
    EXPECT_EQ(head.members, (std::vector<graph::NodeId>{1}));
    EXPECT_EQ(tail.members, (std::vector<graph::NodeId>{2}));
}

TEST(Fusion, HierarchicalGroupsRetainedIntact)
{
    GraphBuilder b("h", Precision::FP16);
    auto x = b.input({64, 256});
    auto n = b.layerNorm(x, "ln");
    auto s = b.scale(n, "scale");
    auto g = b.build();
    (void)s;

    FusionPass fusion(g);
    FusionGroup grp{{1, 2}};
    FusionGroup head, tail;
    EXPECT_FALSE(fusion.splitGroup(grp, &head, &tail));
}

TEST(Fusion, SpecForGroupAggregates)
{
    auto g = toyGraph(1);
    FusionPass fusion(g);
    // fc1 -> gelu chain: nodes 2 and 3 in toyGraph ordering.
    FusionGroup grp{{2, 3}};
    auto spec = fusion.specForGroup(grp);
    EXPECT_EQ(spec.macs, g.node(2).macs + g.node(3).macs);
    // Output is the tail's output; input excludes the internal edge.
    EXPECT_EQ(spec.outputBytes, g.node(3).output.bytes());
    EXPECT_EQ(spec.inputBytes, g.inputBytes(2));
}

// --------------------------------------------------------- KernelRewriter

TEST(KernelRewriter, RenderSubstitutesPlaceholders)
{
    auto out = KernelRewriter::renderTemplate(
        "kernel {{name}} tiles={{k_tiles}}",
        {{"name", "mm"}, {"k_tiles", "8"}});
    EXPECT_EQ(out, "kernel mm tiles=8");
}

TEST(KernelRewriter, UnresolvedKeyDies)
{
    EXPECT_DEATH(KernelRewriter::renderTemplate("{{missing}}", {}),
                 "unresolved template key");
}

TEST(KernelRewriter, SelectsTemplatesByPlan)
{
    auto g = models::buildModel(models::ModelId::ViT);
    KernelModel km(DeviceProfile::onePlus12());
    profiler::AnalyticCapacityProvider cap(km);
    LcOpgPlanner planner(g, cap, km);
    auto plan = planner.plan();

    KernelRewriter rewriter(g, plan, true);
    auto kernels = rewriter.rewriteAll();
    ASSERT_EQ(kernels.size(), g.layerCount());

    int pipelined = 0, plain = 0;
    for (const auto &k : kernels) {
        if (k.tmpl == KernelTemplate::PipelinedBranchFree) {
            ++pipelined;
            EXPECT_GT(k.inlineLoadBytes, 0u);
            EXPECT_TRUE(k.spec.pipelined);
            EXPECT_NE(k.source.find("drain loop"), std::string::npos);
        } else if (k.tmpl == KernelTemplate::Plain) {
            ++plain;
            EXPECT_EQ(k.inlineLoadBytes, 0u);
        }
    }
    EXPECT_GT(pipelined, 0);
    EXPECT_GT(plain, 0);
}

TEST(KernelRewriter, BranchyModeForAblation)
{
    auto g = toyGraph(3);
    KernelModel km(DeviceProfile::onePlus12());
    profiler::AnalyticCapacityProvider cap(km);
    LcOpgPlanner planner(g, cap, km);
    auto plan = planner.plan();

    KernelRewriter rewriter(g, plan, /*branch_free=*/false);
    bool saw_branchy = false;
    for (const auto &k : rewriter.rewriteAll()) {
        if (k.inlineLoadBytes > 0) {
            EXPECT_EQ(k.tmpl, KernelTemplate::BranchyOverlap);
            EXPECT_FALSE(k.spec.pipelined);
            EXPECT_NE(k.source.find("divergent"), std::string::npos);
            saw_branchy = true;
        }
    }
    EXPECT_TRUE(saw_branchy);
}

// ---------------------------------------------------------------- Runtime

TEST(Runtime, MemoryFullyRetiredAfterRun)
{
    auto g = toyGraph(4);
    KernelModel km(DeviceProfile::onePlus12());
    profiler::AnalyticCapacityProvider cap(km);
    LcOpgPlanner planner(g, cap, km);
    auto plan = planner.plan();

    GpuSimulator sim(DeviceProfile::onePlus12());
    StreamingRuntime runtime(sim, g, plan);
    auto r = runtime.run();
    EXPECT_GT(r.integratedLatency(), 0);
    // Every byte allocated during the run must have been freed.
    EXPECT_EQ(sim.memory().used(), 0u);
}

TEST(Runtime, IntegratedCoversInitAndExec)
{
    auto g = toyGraph(4);
    KernelModel km(DeviceProfile::onePlus12());
    profiler::AnalyticCapacityProvider cap(km);
    LcOpgPlanner planner(g, cap, km);
    auto plan = planner.plan();

    GpuSimulator sim(DeviceProfile::onePlus12());
    StreamingRuntime runtime(sim, g, plan);
    auto r = runtime.run();
    EXPECT_EQ(r.integratedLatency(),
              r.initLatency() + r.execLatency());
    EXPECT_EQ(r.kernels, g.layerCount());
}

TEST(Runtime, ArrivalShiftsTimelineNotDuration)
{
    auto g = toyGraph(3);
    KernelModel km(DeviceProfile::onePlus12());
    profiler::AnalyticCapacityProvider cap(km);
    LcOpgPlanner planner(g, cap, km);
    auto plan = planner.plan();

    GpuSimulator sim1(DeviceProfile::onePlus12());
    auto r1 = StreamingRuntime(sim1, g, plan).run();

    GpuSimulator sim2(DeviceProfile::onePlus12());
    RunConfig cfg;
    cfg.arrival = seconds(2.0);
    auto r2 = StreamingRuntime(sim2, g, plan).run(cfg);

    EXPECT_EQ(r2.start, seconds(2.0));
    EXPECT_EQ(r1.integratedLatency(), r2.integratedLatency());
}

TEST(Runtime, SlowDiskIncreasesStalls)
{
    auto g = models::buildModel(models::ModelId::GPTNeoS);
    KernelModel km(DeviceProfile::onePlus12());
    profiler::AnalyticCapacityProvider cap(km);
    LcOpgPlanner planner(g, cap, km);
    auto plan = planner.plan();

    GpuSimulator fast(DeviceProfile::onePlus12());
    auto fast_r = StreamingRuntime(fast, g, plan).run();

    auto slow_dev = DeviceProfile::onePlus12();
    slow_dev.diskToUm = Bandwidth::mbps(300);
    GpuSimulator slow(slow_dev);
    auto slow_r = StreamingRuntime(slow, g, plan).run();

    EXPECT_GT(slow_r.stallTime, fast_r.stallTime);
    EXPECT_GT(slow_r.integratedLatency(), fast_r.integratedLatency());
}

TEST(Runtime, BranchFreeBeatsBranchy)
{
    auto g = models::buildModel(models::ModelId::ViT);
    KernelModel km(DeviceProfile::onePlus12());
    profiler::AnalyticCapacityProvider cap(km);
    LcOpgPlanner planner(g, cap, km);
    auto plan = planner.plan();

    GpuSimulator s1(DeviceProfile::onePlus12());
    RunConfig piped;
    piped.branchFreeKernels = true;
    auto r1 = StreamingRuntime(s1, g, plan).run(piped);

    GpuSimulator s2(DeviceProfile::onePlus12());
    RunConfig branchy;
    branchy.branchFreeKernels = false;
    auto r2 = StreamingRuntime(s2, g, plan).run(branchy);

    EXPECT_LT(r1.integratedLatency(), r2.integratedLatency());
}

TEST(Runtime, DeterministicAcrossRuns)
{
    auto g = toyGraph(4);
    KernelModel km(DeviceProfile::onePlus12());
    profiler::AnalyticCapacityProvider cap(km);
    LcOpgPlanner planner(g, cap, km);
    auto plan = planner.plan();

    GpuSimulator s1(DeviceProfile::onePlus12());
    auto r1 = StreamingRuntime(s1, g, plan).run();
    GpuSimulator s2(DeviceProfile::onePlus12());
    auto r2 = StreamingRuntime(s2, g, plan).run();
    EXPECT_EQ(r1.integratedLatency(), r2.integratedLatency());
    EXPECT_EQ(r1.peakMemory, r2.peakMemory);
    EXPECT_DOUBLE_EQ(r1.avgMemoryBytes, r2.avgMemoryBytes);
}

// ----------------------------------------------------------------- Facade

TEST(FlashMemFacade, CompileProducesConsistentArtifacts)
{
    core::FlashMem fm(DeviceProfile::onePlus12());
    auto g = models::buildModel(models::ModelId::ViT);
    auto compiled = fm.compile(g);

    EXPECT_TRUE(compiled.plan.validate(compiled.fusedGraph, false));
    EXPECT_EQ(compiled.kernels.size(),
              compiled.fusedGraph.layerCount());
    EXPECT_GT(compiled.overlapFraction(), 0.3);
    EXPECT_LT(compiled.fusedGraph.layerCount(), g.layerCount());
}

TEST(FlashMemFacade, AblationFusionReducesKernels)
{
    auto g = models::buildModel(models::ModelId::GPTNeoS);

    FlashMemOptions no_fusion;
    no_fusion.adaptiveFusion = false;
    PlanMemo::global().clear(); // equal footing between ablation arms
    core::FlashMem fm_plain(DeviceProfile::onePlus12(), no_fusion);
    auto plain = fm_plain.compile(g);

    PlanMemo::global().clear();
    core::FlashMem fm_fused(DeviceProfile::onePlus12());
    auto fused = fm_fused.compile(g);

    EXPECT_EQ(plain.fusedGraph.layerCount(), g.layerCount());
    EXPECT_LT(fused.fusedGraph.layerCount(),
              plain.fusedGraph.layerCount());
}

TEST(FlashMemFacade, FullSystemFastestAmongAblations)
{
    auto g = models::buildModel(models::ModelId::ViT);

    FlashMemOptions opg_only;
    opg_only.adaptiveFusion = false;
    opg_only.kernelRewriting = false;

    FlashMemOptions with_fusion = opg_only;
    with_fusion.adaptiveFusion = true;

    FlashMemOptions full; // fusion + rewriting

    struct Outcome
    {
        SimTime integrated;
        SimTime computeBusy;
    };
    auto run = [&](const FlashMemOptions &opt) -> Outcome {
        // Equal footing: no warm starts leaking between ablation arms.
        PlanMemo::global().clear();
        core::FlashMem fm(DeviceProfile::onePlus12(), opt);
        auto compiled = fm.compile(g);
        GpuSimulator sim(DeviceProfile::onePlus12());
        auto r = fm.execute(sim, compiled);
        return {r.integratedLatency(), sim.computeQueue().busyTime()};
    };

    auto opg = run(opg_only);
    auto fus = run(with_fusion);
    auto ful = run(full);

    // GPU-side work strictly shrinks as optimizations stack: fusion
    // removes launches + intermediate traffic, rewriting removes
    // divergence penalties.
    EXPECT_LT(fus.computeBusy, opg.computeBusy);
    EXPECT_LE(ful.computeBusy, fus.computeBusy);
    // Integrated latency is disk-bound for ViT, so fusion's
    // capacity-vs-launch trade-off may shift it slightly; the full
    // system must stay within a few percent of the OPG-only plan and
    // never regress materially.
    EXPECT_LT(static_cast<double>(ful.integrated),
              1.03 * static_cast<double>(opg.integrated));
}

TEST(FlashMemFacade, RecompilationReusesPlanMemo)
{
    PlanMemo::global().clear();
    core::FlashMem fm(DeviceProfile::onePlus12());
    auto g = models::buildModel(models::ModelId::GPTNeoS);
    auto first = fm.compile(g);
    auto second = fm.compile(g);
    EXPECT_GT(first.planMemoStores, 0u);
    EXPECT_GT(second.planMemoHits, 0u);
    // Budget-truncated windows may improve under a warm start (and
    // fusion decisions may follow), so the plans need not be
    // byte-identical — but every compile must stay valid.
    EXPECT_TRUE(first.plan.validate(first.fusedGraph, false));
    EXPECT_TRUE(second.plan.validate(second.fusedGraph, false));
}

TEST(FlashMemFacade, RunsGpt27BWithinOnePlus12Budget)
{
    // The headline claim: GPTN-2.7B (5.2 GB of fp16 weights) executes
    // under FlashMem on a device where preloading frameworks OOM.
    core::FlashMem fm(DeviceProfile::onePlus12());
    auto g = models::buildModel(models::ModelId::GPTNeo2_7B);
    auto r = fm.runOnce(g);
    EXPECT_FALSE(r.oom);
    EXPECT_LT(r.peakMemory, DeviceProfile::onePlus12().appMemoryBudget);
}

} // namespace
} // namespace flashmem::core
