/**
 * @file
 * Tests for the baseline frameworks, the naive overlap strategies, the
 * multi-DNN FIFO scheduler, and the metrics helpers — including the
 * cross-framework integration properties behind Tables 1/7/8 and
 * Figures 6/9/10.
 */

#include <gtest/gtest.h>

#include "baselines/framework.hh"
#include "baselines/naive_overlap.hh"
#include "baselines/preload_framework.hh"
#include "core/flashmem.hh"
#include "core/runtime.hh"
#include "metrics/report.hh"
#include "models/model_zoo.hh"
#include "multidnn/fifo_scheduler.hh"
#include "multidnn/workload.hh"

namespace flashmem::baselines {
namespace {

using core::FlashMem;
using gpusim::DeviceProfile;
using gpusim::GpuSimulator;
using models::ModelId;

TEST(FrameworkTraits, AllSixPresent)
{
    EXPECT_EQ(allFrameworks().size(), 6u);
    for (auto id : allFrameworks())
        EXPECT_FALSE(frameworkTraits(id).name.empty());
}

TEST(FrameworkTraits, ExecuTorchHasNoTexturePipeline)
{
    const auto &t = frameworkTraits(FrameworkId::ExecuTorch);
    EXPECT_TRUE(t.buffersOnly);
    EXPECT_TRUE(t.fp32Storage);
    EXPECT_GT(t.execSlowdown, 10.0);
}

TEST(Support, NcnnRejectsTransformers)
{
    PreloadFramework ncnn(FrameworkId::NCNN,
                          DeviceProfile::onePlus12());
    auto vit = models::buildModel(ModelId::ViT);
    auto resnet = models::buildModel(ModelId::ResNet50);
    EXPECT_EQ(ncnn.supports(vit), SupportStatus::MissingOperator);
    EXPECT_EQ(ncnn.supports(resnet), SupportStatus::Supported);
}

TEST(Support, LiteRtSupportsOnlyVisionClassifiers)
{
    // Paper Table 7: LiteRT runs ResNet50, ViT, DeepViT and nothing
    // else among the evaluated models.
    PreloadFramework litert(FrameworkId::LiteRT,
                            DeviceProfile::onePlus12());
    for (const auto &spec : models::modelZoo()) {
        auto g = models::buildModel(spec.id);
        bool expected = spec.id == ModelId::ResNet50 ||
                        spec.id == ModelId::ViT ||
                        spec.id == ModelId::DeepViT;
        EXPECT_EQ(litert.supports(g) == SupportStatus::Supported,
                  expected)
            << spec.abbr;
    }
}

TEST(Support, MatrixMatchesPaperTable7)
{
    // Spot-check the published "-" pattern for the other frameworks.
    auto dev = DeviceProfile::onePlus12();
    auto supported = [&](FrameworkId id, ModelId m) {
        auto g = models::buildModel(m);
        return PreloadFramework(id, dev).supports(g) ==
               SupportStatus::Supported;
    };
    // MNN: no SAM-2, no GPT-Neo >= 1.3B.
    EXPECT_FALSE(supported(FrameworkId::MNN, ModelId::SAM2));
    EXPECT_FALSE(supported(FrameworkId::MNN, ModelId::GPTNeo1_3B));
    EXPECT_TRUE(supported(FrameworkId::MNN, ModelId::SDUNet));
    EXPECT_TRUE(supported(FrameworkId::MNN, ModelId::WhisperMedium));
    // TVM: no SAM-2 / SD-UNet / large GPT-Neo.
    EXPECT_FALSE(supported(FrameworkId::TVM, ModelId::SAM2));
    EXPECT_FALSE(supported(FrameworkId::TVM, ModelId::SDUNet));
    EXPECT_TRUE(supported(FrameworkId::TVM, ModelId::WhisperMedium));
    // ExecuTorch: runs SAM-2 and GPTN-1.3B, but not Whisper/DepthA.
    EXPECT_TRUE(supported(FrameworkId::ExecuTorch, ModelId::SAM2));
    EXPECT_TRUE(
        supported(FrameworkId::ExecuTorch, ModelId::GPTNeo1_3B));
    EXPECT_FALSE(
        supported(FrameworkId::ExecuTorch, ModelId::WhisperMedium));
    EXPECT_FALSE(
        supported(FrameworkId::ExecuTorch, ModelId::DepthAnythingL));
    // SmartMem: everything converts (2.7B then OOMs at runtime).
    for (const auto &spec : models::modelZoo()) {
        EXPECT_TRUE(supported(FrameworkId::SmartMem, spec.id))
            << spec.abbr;
    }
}

TEST(PreloadRun, InitDominatedByTransform)
{
    // Table 1: data transformation dwarfs disk loading for MNN.
    PreloadFramework mnn(FrameworkId::MNN, DeviceProfile::onePlus12());
    auto g = models::buildModel(ModelId::ViT);
    GpuSimulator sim(DeviceProfile::onePlus12());
    auto r = mnn.run(sim, g);

    SimTime disk_time =
        DeviceProfile::onePlus12().diskToUm.transferTime(
            g.totalWeightBytes());
    EXPECT_GT(r.initLatency(), 5 * disk_time);
    EXPECT_GT(r.initLatency(), r.execLatency());
}

TEST(PreloadRun, MemoryBalancedAfterRun)
{
    PreloadFramework mnn(FrameworkId::MNN, DeviceProfile::onePlus12());
    auto g = models::buildModel(ModelId::ResNet50);
    GpuSimulator sim(DeviceProfile::onePlus12());
    mnn.run(sim, g);
    EXPECT_EQ(sim.memory().used(), 0u);
}

TEST(PreloadRun, PeakMemoryMultipleOfWeights)
{
    PreloadFramework mnn(FrameworkId::MNN, DeviceProfile::onePlus12());
    auto g = models::buildModel(ModelId::WhisperMedium);
    GpuSimulator sim(DeviceProfile::onePlus12());
    auto r = mnn.run(sim, g);
    double ratio = static_cast<double>(r.peakMemory) /
                   static_cast<double>(g.totalWeightBytes());
    // Staging + UM copy + texture copy: 2.5-6x (Table 1 zone).
    EXPECT_GT(ratio, 2.5);
    EXPECT_LT(ratio, 7.0);
}

TEST(PreloadRun, Gpt27BOomsOnEveryPreloadFramework)
{
    auto g = models::buildModel(ModelId::GPTNeo2_7B);
    for (auto id : allFrameworks()) {
        PreloadFramework fw(id, DeviceProfile::onePlus12());
        if (fw.supports(g) != SupportStatus::Supported)
            continue;
        GpuSimulator sim(DeviceProfile::onePlus12());
        auto r = fw.run(sim, g);
        EXPECT_TRUE(r.oom) << fw.name();
    }
}

TEST(PreloadRun, Gpt13BOomsOnSmallDevicesUnderSmartMem)
{
    // Figure 10: GPTN-1.3B is unsupported on Xiaomi Mi 6 and Pixel 8
    // under SmartMem but fine on the OnePlus 12.
    auto g = models::buildModel(ModelId::GPTNeo1_3B);

    for (const auto &dev :
         {DeviceProfile::xiaomiMi6(), DeviceProfile::pixel8()}) {
        PreloadFramework smem(FrameworkId::SmartMem, dev);
        GpuSimulator sim(dev);
        EXPECT_TRUE(smem.run(sim, g).oom) << dev.name;
    }
    PreloadFramework smem(FrameworkId::SmartMem,
                          DeviceProfile::onePlus12());
    GpuSimulator sim(DeviceProfile::onePlus12());
    EXPECT_FALSE(smem.run(sim, g).oom);
}

TEST(PreloadRun, FlashMemRuns13BOnEveryDevice)
{
    auto g = models::buildModel(ModelId::GPTNeo1_3B);
    for (const auto &dev :
         {DeviceProfile::onePlus12(), DeviceProfile::onePlus11(),
          DeviceProfile::pixel8(), DeviceProfile::xiaomiMi6()}) {
        FlashMem fm(dev);
        auto r = fm.runOnce(g);
        EXPECT_FALSE(r.oom) << dev.name;
    }
}

TEST(Comparison, FlashMemBeatsAllBaselinesIntegrated)
{
    // The core Table-7 property on a representative model.
    auto g = models::buildModel(ModelId::ViT);
    FlashMem fm(DeviceProfile::onePlus12());
    auto flash = fm.runOnce(g);

    for (auto id : allFrameworks()) {
        PreloadFramework fw(id, DeviceProfile::onePlus12());
        if (fw.supports(g) != SupportStatus::Supported)
            continue;
        GpuSimulator sim(DeviceProfile::onePlus12());
        auto r = fw.run(sim, g);
        EXPECT_GT(r.integratedLatency(), flash.integratedLatency())
            << frameworkName(id);
    }
}

TEST(Comparison, FlashMemUsesLessAverageMemory)
{
    auto g = models::buildModel(ModelId::WhisperMedium);
    FlashMem fm(DeviceProfile::onePlus12());
    auto flash = fm.runOnce(g);

    for (auto id : {FrameworkId::MNN, FrameworkId::SmartMem,
                    FrameworkId::TVM}) {
        PreloadFramework fw(id, DeviceProfile::onePlus12());
        GpuSimulator sim(DeviceProfile::onePlus12());
        auto r = fw.run(sim, g);
        EXPECT_GT(r.avgMemoryBytes, 1.7 * flash.avgMemoryBytes)
            << frameworkName(id);
    }
}

TEST(Comparison, SmartMemFastestExecAmongBaselines)
{
    auto g = models::buildModel(ModelId::ViT);
    PreloadFramework smem(FrameworkId::SmartMem,
                          DeviceProfile::onePlus12());
    auto smem_exec = smem.warmExecLatency(g);
    for (auto id : {FrameworkId::MNN, FrameworkId::TVM,
                    FrameworkId::ExecuTorch}) {
        PreloadFramework fw(id, DeviceProfile::onePlus12());
        EXPECT_GT(fw.warmExecLatency(g), smem_exec)
            << frameworkName(id);
    }
}

TEST(Comparison, ExecuTorchSlowestExec)
{
    auto g = models::buildModel(ModelId::ViT);
    PreloadFramework etorch(FrameworkId::ExecuTorch,
                            DeviceProfile::onePlus12());
    PreloadFramework mnn(FrameworkId::MNN, DeviceProfile::onePlus12());
    EXPECT_GT(etorch.warmExecLatency(g),
              10 * mnn.warmExecLatency(g));
}

// ---------------------------------------------------------- naive overlap

TEST(NaiveOverlap, PlansAreValid)
{
    auto g = models::buildModel(ModelId::GPTNeoS);
    EXPECT_TRUE(alwaysNextPlan(g).validate(g, false));
    EXPECT_TRUE(sameOpTypePlan(g).validate(g, false));
}

TEST(NaiveOverlap, Figure9Ordering)
{
    // FlashMem < Same-Op-Type < Always-Next in integrated latency.
    auto g = models::buildModel(ModelId::DeepViT);
    auto dev = DeviceProfile::onePlus12();
    FlashMem fm(dev);
    auto flash = fm.runOnce(g).integratedLatency();

    // Naive strategies interleave loads without the branch-free
    // rewrite (divergent kernels).
    core::RunConfig naive_cfg;
    naive_cfg.branchFreeKernels = false;

    GpuSimulator s1(dev);
    auto next_plan = alwaysNextPlan(g);
    auto always = core::StreamingRuntime(s1, g, next_plan)
                      .run(naive_cfg)
                      .integratedLatency();

    GpuSimulator s2(dev);
    auto same_plan = sameOpTypePlan(g);
    auto same = core::StreamingRuntime(s2, g, same_plan)
                    .run(naive_cfg)
                    .integratedLatency();

    EXPECT_LT(flash, same);
    EXPECT_LT(same, always);
    // The paper reports up to 4.3x (Always-Next) / 2.4x (Same-Op) on
    // real devices; the simulator reproduces the ordering and a clear
    // gap, though the magnitude is damped (see EXPERIMENTS.md).
    EXPECT_GT(static_cast<double>(always) / flash, 1.15);
    EXPECT_LT(static_cast<double>(always) / flash, 8.0);
}

// --------------------------------------------------------------- multidnn

TEST(MultiDnn, WorkloadDeterministicAndComplete)
{
    using namespace multidnn;
    std::vector<ModelId> ms = {ModelId::ViT, ModelId::ResNet50};
    auto a = interleavedWorkload(ms, 3, milliseconds(5), 42);
    auto b = interleavedWorkload(ms, 3, milliseconds(5), 42);
    ASSERT_EQ(a.size(), 6u);
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].model, b[i].model);
        EXPECT_EQ(a[i].arrival, b[i].arrival);
    }
    int vit = 0;
    for (const auto &r : a)
        vit += (r.model == ModelId::ViT);
    EXPECT_EQ(vit, 3);
}

TEST(MultiDnn, FifoRunsInOrder)
{
    using namespace multidnn;
    FlashMem fm(DeviceProfile::onePlus12());
    auto queue = chainWorkload({ModelId::ResNet50,
                                ModelId::DepthAnythingS});
    auto outcome = FifoScheduler::runFlashMem(fm, queue);
    ASSERT_EQ(outcome.runs.size(), 2u);
    EXPECT_LE(outcome.runs[0].end, outcome.runs[1].start);
    EXPECT_EQ(outcome.makespan, outcome.runs[1].end);
}

TEST(MultiDnn, FlashMemPeakFarBelowMnn)
{
    // Figure 6: MNN spikes to multi-GB during each init; FlashMem stays
    // within its streaming budget.
    using namespace multidnn;
    std::vector<ModelId> ms = {ModelId::ViT, ModelId::WhisperMedium};
    auto queue = interleavedWorkload(ms, 2, 0, 7);

    FlashMem fm(DeviceProfile::onePlus12());
    auto flash = FifoScheduler::runFlashMem(fm, queue);
    auto mnn = FifoScheduler::runPreload(FrameworkId::MNN,
                                         DeviceProfile::onePlus12(),
                                         queue);

    EXPECT_LT(2 * flash.peakMemory, mnn.peakMemory);
    EXPECT_LT(flash.makespan, mnn.makespan);
    EXPECT_LT(flash.energyJoules, mnn.energyJoules);
}

// ---------------------------------------------------------------- metrics

TEST(Metrics, RatioSummaryGeomean)
{
    metrics::RatioSummary s;
    s.add(2.0);
    s.add(8.0);
    EXPECT_DOUBLE_EQ(s.geomean(), 4.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 8.0);
    EXPECT_EQ(s.count(), 2u);
}

TEST(Metrics, SampleTraceCoversSpan)
{
    TimeSeries ts;
    ts.record(0, 0.0);
    ts.record(seconds(1.0), static_cast<double>(mib(100)));
    ts.record(seconds(2.0), 0.0);
    auto pts = metrics::sampleTrace(ts, 11);
    ASSERT_EQ(pts.size(), 11u);
    EXPECT_DOUBLE_EQ(pts.front().seconds, 0.0);
    EXPECT_DOUBLE_EQ(pts.back().seconds, 2.0);
    EXPECT_NEAR(pts[5].megabytes, 100.0, 1.0);
}

TEST(Metrics, AsciiChartRenders)
{
    TimeSeries ts;
    ts.record(0, 0.0);
    ts.record(seconds(1.0), static_cast<double>(mib(100)));
    metrics::ChartSeries s{"mem", '*', metrics::sampleTrace(ts, 20)};
    std::ostringstream os;
    metrics::renderAsciiChart(os, {s}, 40, 8);
    EXPECT_NE(os.str().find('*'), std::string::npos);
    EXPECT_NE(os.str().find("mem"), std::string::npos);
}

} // namespace
} // namespace flashmem::baselines
