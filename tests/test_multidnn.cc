/**
 * @file
 * Tests for the event-driven multi-DNN scheduler: the event loop,
 * queueing-delay latency accounting, policy ordering (FIFO / SJF /
 * priority-with-aging / memory-aware admission), and on-device
 * re-planning — including its bit-determinism across planner thread
 * counts and across a warm PlanMemo.
 */

#include <gtest/gtest.h>

#include <map>

#include "core/flashmem.hh"
#include "graph/builder.hh"
#include "multidnn/fifo_scheduler.hh"
#include "multidnn/scheduler.hh"

namespace flashmem::multidnn {
namespace {

using core::FlashMem;
using core::FlashMemOptions;
using gpusim::DeviceProfile;
using gpusim::GpuSimulator;
using models::ModelId;

// ------------------------------------------------------------ event loop

TEST(EventScheduler, EmptyQueueIsANoOp)
{
    FlashMem fm(DeviceProfile::onePlus12());
    EventScheduler sched(fm);
    auto out = sched.run({}, FifoPolicy{});
    EXPECT_TRUE(out.runs.empty());
    EXPECT_EQ(out.makespan, 0);
    EXPECT_EQ(out.peakMemory, 0u);
    EXPECT_EQ(out.energyJoules, 0.0);
    EXPECT_EQ(out.meanLatency(), 0);
    EXPECT_EQ(out.meanQueueDelay(), 0);
    EXPECT_TRUE(out.trace.empty());
}

TEST(EventScheduler, FifoPolicyMatchesSeedFifoDrain)
{
    // The event-driven drain under the FIFO policy must reproduce the
    // seed scheduler (compile once, run in order, start at
    // max(arrival, device free)) exactly.
    FlashMem fm(DeviceProfile::onePlus12());
    auto queue = interleavedWorkload(
        {ModelId::ResNet50, ModelId::DepthAnythingS}, 2,
        milliseconds(20), 11);

    EventScheduler sched(fm);
    auto out = sched.run(queue, FifoPolicy{});
    ASSERT_EQ(out.runs.size(), queue.size());

    // Reference drain, replicating the seed FIFO scheduler inline.
    std::map<ModelId, core::CompiledModel> compiled;
    for (const auto &req : queue) {
        if (!compiled.count(req.model))
            compiled.emplace(req.model,
                             fm.compile(models::buildModel(req.model)));
    }
    GpuSimulator sim(fm.device());
    SimTime free_at = 0;
    for (std::size_t i = 0; i < queue.size(); ++i) {
        SimTime start = std::max(queue[i].arrival, free_at);
        auto r = fm.execute(sim, compiled.at(queue[i].model), start);
        EXPECT_EQ(out.runs[i].model, r.model);
        EXPECT_EQ(out.runs[i].start, r.start);
        EXPECT_EQ(out.runs[i].end, r.end);
        EXPECT_EQ(out.runs[i].arrival, queue[i].arrival);
        free_at = r.end;
    }
    EXPECT_EQ(out.makespan, free_at);
}

TEST(EventScheduler, TraceLivesInTheOutcome)
{
    // No mutable global state: each outcome owns its memory trace, and
    // a later run does not disturb an earlier outcome.
    FlashMem fm(DeviceProfile::onePlus12());
    EventScheduler sched(fm);
    auto queue = chainWorkload({ModelId::ResNet50});
    auto first = sched.run(queue, FifoPolicy{});
    ASSERT_FALSE(first.trace.empty());
    EXPECT_EQ(static_cast<Bytes>(
                  first.trace.maxOver(0, first.makespan)),
              first.peakMemory);
    auto first_points = first.trace.points().size();
    auto second = sched.run(queue, FifoPolicy{});
    EXPECT_EQ(first.trace.points().size(), first_points);
    EXPECT_EQ(static_cast<Bytes>(
                  second.trace.maxOver(0, second.makespan)),
              second.peakMemory);
}

// ------------------------------------------- queueing-delay accounting

TEST(EventScheduler, MeanLatencyIncludesQueueingDelay)
{
    // Two same-time arrivals: the second request waits for the whole
    // first run, and that wait is part of its latency.
    FlashMem fm(DeviceProfile::onePlus12());
    EventScheduler sched(fm);
    auto queue = chainWorkload({ModelId::ResNet50, ModelId::ResNet50},
                               /*gap=*/0);
    auto out = sched.run(queue, FifoPolicy{});
    ASSERT_EQ(out.runs.size(), 2u);

    const auto &r0 = out.runs[0];
    const auto &r1 = out.runs[1];
    EXPECT_EQ(r0.arrival, 0);
    EXPECT_EQ(r1.arrival, 0);
    EXPECT_EQ(r0.queueDelay(), 0);
    // The second request queued behind the first for its full run.
    EXPECT_EQ(r1.start, r0.end);
    EXPECT_EQ(r1.queueDelay(), r0.end);
    EXPECT_EQ(r1.requestLatency(),
              r1.integratedLatency() + r1.queueDelay());
    EXPECT_GT(r1.requestLatency(), r1.integratedLatency());
    // Mean latency is the mean of end - arrival, not end - start.
    EXPECT_EQ(out.meanLatency(),
              (r0.requestLatency() + r1.requestLatency()) / 2);
    EXPECT_GT(out.meanLatency(),
              (r0.integratedLatency() + r1.integratedLatency()) / 2);
}

TEST(EventScheduler, StandaloneRunsHaveZeroQueueDelay)
{
    FlashMem fm(DeviceProfile::onePlus12());
    auto r = fm.runOnce(models::buildModel(ModelId::ResNet50));
    EXPECT_EQ(r.queueDelay(), 0);
    EXPECT_EQ(r.requestLatency(), r.integratedLatency());
}

// --------------------------------------------------------------- policies

TEST(Policies, SjfRunsShortJobsFirst)
{
    // GPT-Neo S is far slower than ResNet50; with both ready at t=0
    // and the slow one first in the queue, SJF must flip the order.
    FlashMem fm(DeviceProfile::onePlus12());
    EventScheduler sched(fm);
    auto queue = chainWorkload({ModelId::GPTNeoS, ModelId::ResNet50},
                               /*gap=*/0);

    auto fifo = sched.run(queue, FifoPolicy{});
    ASSERT_EQ(fifo.runs.size(), 2u);
    EXPECT_EQ(fifo.runs[0].model, "gptneo_s");

    auto sjf = sched.run(queue, SjfPolicy{});
    ASSERT_EQ(sjf.runs.size(), 2u);
    EXPECT_EQ(sjf.runs[0].model, "resnet50");
    // Same total work — but the short job no longer queues behind the
    // long one, so mean latency improves while makespan stays put.
    EXPECT_EQ(sjf.makespan, fifo.makespan);
    EXPECT_LT(sjf.meanLatency(), fifo.meanLatency());
}

TEST(Policies, PriorityOrdersAndAgingPreventsStarvation)
{
    FlashMem fm(DeviceProfile::onePlus12());
    EventScheduler sched(fm);

    // One low-priority request at t=0 and a staggered stream of
    // high-priority ones (a ResNet50 run is ~50 ms, so the backlog
    // never drains): without aging the low-priority request starves
    // to the back of the queue.
    std::vector<ModelRequest> queue;
    queue.push_back({ModelId::DepthAnythingS, 0, /*priority=*/0});
    for (int i = 0; i < 4; ++i)
        queue.push_back({ModelId::ResNet50, milliseconds(30 * i),
                         /*priority=*/5});

    PriorityAgingPolicy no_aging(/*aging_quantum=*/seconds(1e6));
    auto strict = sched.run(queue, no_aging);
    ASSERT_EQ(strict.runs.size(), queue.size());
    EXPECT_EQ(strict.runs.back().model, "depth_anything_s");
    for (std::size_t i = 0; i + 1 < strict.runs.size(); ++i)
        EXPECT_EQ(strict.runs[i].model, "resnet50");

    // With a small quantum the waiting request out-ages the fresher
    // high-priority arrivals (its head start in waiting time closes
    // the 5-level priority gap) and runs second instead of last.
    PriorityAgingPolicy aging(/*aging_quantum=*/milliseconds(4));
    auto aged = sched.run(queue, aging);
    ASSERT_EQ(aged.runs.size(), queue.size());
    EXPECT_EQ(aged.runs[1].model, "depth_anything_s");
}

TEST(Policies, MakePolicyCoversAllKinds)
{
    for (auto kind : allPolicyKinds()) {
        auto p = makePolicy(kind);
        ASSERT_NE(p, nullptr);
        EXPECT_NE(std::string(p->name()), "");
    }
    EXPECT_TRUE(MemoryAwarePolicy{}.memoryAware());
    EXPECT_FALSE(FifoPolicy{}.memoryAware());
}

// ------------------------------------------ deadline / SLO admission

TEST(Deadline, BoundedRequestBehindLongLlmRunIsShedNotBlown)
{
    // A long GPT-Neo run holds the device; a ResNet50 with a tight
    // latency bound arrives just after. By the time the device frees,
    // the bound cannot be met even if dispatched immediately —
    // deadline admission sheds it instead of blowing its SLO, and the
    // shed request does not count toward goodput.
    FlashMem fm(DeviceProfile::onePlus12());
    EventScheduler sched(fm);
    std::vector<ModelRequest> queue{
        {ModelId::GPTNeoS, 0, 0, 0},
        {ModelId::ResNet50, milliseconds(1), 0,
         /*latencyBound=*/milliseconds(60)},
    };

    // FIFO runs it anyway and blows the bound.
    auto fifo = sched.run(queue, FifoPolicy{});
    ASSERT_EQ(fifo.runs.size(), 2u);
    EXPECT_FALSE(fifo.runs[1].metSlo());
    EXPECT_EQ(fifo.goodput(), 1u);
    EXPECT_EQ(fifo.sloViolations(), 1u);
    EXPECT_TRUE(fifo.shed.empty());

    auto out = sched.run(queue, DeadlinePolicy{});
    ASSERT_EQ(out.runs.size(), 1u);
    EXPECT_EQ(out.runs[0].model, "gptneo_s");
    ASSERT_EQ(out.shed.size(), 1u);
    EXPECT_EQ(out.shed[0].queueIndex, 1u);
    EXPECT_EQ(out.shed[0].model, ModelId::ResNet50);
    EXPECT_EQ(out.shed[0].latencyBound, milliseconds(60));
    EXPECT_GE(out.shed[0].shedAt, out.runs[0].start);
    // Goodput counts only completed-in-bound runs; shed ones never do.
    EXPECT_EQ(out.goodput(), 1u);
    EXPECT_EQ(out.sloViolations(), 0u);
    EXPECT_DOUBLE_EQ(out.goodputRate(), 0.5);
    EXPECT_DOUBLE_EQ(out.shedRate(), 0.5);
}

TEST(Deadline, DegradeModeReplansInsteadOfShedding)
{
    // Same doomed request under Overload::Degrade: it still runs —
    // at a degraded (re-planned) budget that frees shared capacity —
    // and is counted as a violation, not a shed.
    FlashMem fm(DeviceProfile::onePlus12());
    EventScheduler sched(fm);
    std::vector<ModelRequest> queue{
        {ModelId::GPTNeoS, 0, 0, 0},
        {ModelId::ResNet50, milliseconds(1), 0, milliseconds(60)},
    };
    auto out = sched.run(
        queue, DeadlinePolicy{DeadlinePolicy::Overload::Degrade});
    ASSERT_EQ(out.runs.size(), 2u);
    EXPECT_TRUE(out.shed.empty());
    EXPECT_EQ(out.degradedRuns, 1);
    EXPECT_TRUE(out.runs[1].degraded);
    EXPECT_FALSE(out.runs[0].degraded);
    // The degraded dispatch re-planned the model at the smaller
    // budget through FlashMem::replan.
    EXPECT_GT(out.replans, 0);
    EXPECT_EQ(out.goodput(), 1u);
    EXPECT_EQ(out.sloViolations(), 1u);
    EXPECT_DOUBLE_EQ(out.shedRate(), 0.0);
}

TEST(Deadline, FeasibleBoundedRequestsRunAndMeetTheirSlo)
{
    FlashMem fm(DeviceProfile::onePlus12());
    EventScheduler sched(fm);
    std::vector<ModelRequest> queue{
        {ModelId::ResNet50, 0, 0, seconds(10)},
        {ModelId::DepthAnythingS, milliseconds(1), 0, seconds(10)},
    };
    auto out = sched.run(queue, DeadlinePolicy{});
    ASSERT_EQ(out.runs.size(), 2u);
    EXPECT_TRUE(out.shed.empty());
    EXPECT_EQ(out.goodput(), 2u);
    EXPECT_DOUBLE_EQ(out.goodputRate(), 1.0);
}

TEST(Deadline, EdfRunsEarlierDeadlineFirst)
{
    // Both ready while the device is busy; the later-queued request
    // has the earlier absolute deadline and must dispatch first.
    FlashMem fm(DeviceProfile::onePlus12());
    EventScheduler sched(fm);
    std::vector<ModelRequest> queue{
        {ModelId::GPTNeoS, 0, 0, 0},
        {ModelId::ResNet50, milliseconds(1), 0, seconds(30)},
        {ModelId::DepthAnythingS, milliseconds(2), 0, seconds(5)},
    };
    auto out = sched.run(queue, DeadlinePolicy{});
    ASSERT_EQ(out.runs.size(), 3u);
    EXPECT_EQ(out.runs[1].model, "depth_anything_s");
    EXPECT_EQ(out.runs[2].model, "resnet50");
}

// ------------------------------------------------- on-device re-planning

TEST(Replanning, ReplanShrinksInflightBudgetDeterministically)
{
    // Byte-identical re-plans across planner thread counts: the
    // stage/solve/merge pipeline makes each window solve a pure
    // function of its staged input, so the serialized plan cannot
    // depend on how many workers solved it — budget-truncated windows
    // included.
    auto g = models::buildModel(ModelId::ResNet50);
    auto replan_with_threads = [&](int threads) {
        core::PlanMemo memo(1024);
        FlashMemOptions opt;
        opt.opg.parallel.threads = threads;
        opt.opg.memo = &memo;
        FlashMem fm(DeviceProfile::onePlus12(), opt);
        auto compiled = fm.compile(g);
        auto replanned = fm.replan(compiled, mib(96));
        EXPECT_EQ(replanned.planBudget, mib(96));
        EXPECT_EQ(replanned.replans, 1);
        EXPECT_TRUE(replanned.plan.validate(replanned.fusedGraph,
                                            false));
        return replanned.plan.serialize();
    };
    auto t1 = replan_with_threads(1);
    auto t4 = replan_with_threads(4);
    EXPECT_EQ(t1, t4);
}

/** Small residual MLP whose plan windows exhaust (prove optimality)
 * within the decision budget — the regime where re-plans are provably
 * byte-identical even across a warm memo. */
graph::Graph
tinyReplanModel()
{
    graph::GraphBuilder b("replan_tiny", Precision::FP16);
    auto x = b.input({64, 256});
    for (int i = 0; i < 3; ++i) {
        std::string p = "blk" + std::to_string(i);
        auto n = b.layerNorm(x, p + ".ln");
        auto h = b.matmul(n, 1024, p + ".fc1");
        h = b.activation(h, graph::OpKind::GeLU, p + ".act");
        h = b.matmul(h, 256, p + ".fc2");
        x = b.add(x, h, p + ".res");
    }
    return b.build();
}

TEST(Replanning, ReplanIsByteIdenticalAcrossWarmMemo)
{
    // Re-planning the same budget twice through one memo: the second
    // pass warm-starts from the first's incumbents and must reproduce
    // the plan byte for byte (windows prove optimal, so the warm
    // start can only re-prove, never improve).
    auto g = tinyReplanModel();
    core::PlanMemo memo(1024);
    FlashMemOptions opt;
    opt.opg.memo = &memo;
    opt.opg.chunkBytes = kib(256);
    opt.opg.solverDecisionsPerWindow = 2000000;
    opt.opg.solverTimePerWindow = 10.0;
    FlashMem fm(DeviceProfile::onePlus12(), opt);
    auto compiled = fm.compile(g);

    auto cold = fm.replan(compiled, mib(4));
    ASSERT_EQ(cold.stats.overallStatus, solver::SolveStatus::Optimal);
    auto warm = fm.replan(compiled, mib(4));
    EXPECT_EQ(cold.plan.serialize(), warm.plan.serialize());
    EXPECT_GT(warm.planMemoHits, 0u);
}

TEST(Replanning, ReplanChangesThePlanUnderATighterBudget)
{
    // A genuinely shrunken budget forces more preloading (the
    // in-flight bound C2 tightens), so the sibling plan differs and
    // preloads at least as much.
    auto g = models::buildModel(ModelId::GPTNeoS);
    FlashMem fm(DeviceProfile::onePlus12());
    auto compiled = fm.compile(g);
    auto shrunk = fm.replan(compiled, mib(8));
    EXPECT_TRUE(shrunk.plan.validate(shrunk.fusedGraph, false));
    EXPECT_GE(shrunk.plan.preloadBytes(shrunk.fusedGraph),
              compiled.plan.preloadBytes(compiled.fusedGraph));
    EXPECT_LE(shrunk.overlapFraction(), compiled.overlapFraction());
}

TEST(Replanning, MemoryAwareAdmissionReplansUnderContention)
{
    // Three distinct models under a tight shared budget: admission
    // shrinks the per-model share, triggering re-plans; the outcome
    // stays a valid serialized schedule.
    FlashMem fm(DeviceProfile::onePlus12());
    SchedulerConfig cfg;
    cfg.capacityBudget = mib(768);
    EventScheduler sched(fm, cfg);
    auto queue = interleavedWorkload(
        {ModelId::ResNet50, ModelId::DepthAnythingS, ModelId::ViT}, 2,
        0, 3);
    auto out = sched.run(queue, MemoryAwarePolicy{});
    ASSERT_EQ(out.runs.size(), queue.size());
    EXPECT_GT(out.replans, 0);
    // Serialized device: runs never overlap.
    for (std::size_t i = 1; i < out.runs.size(); ++i)
        EXPECT_GE(out.runs[i].start, out.runs[i - 1].end);
    // FIFO selection underneath: same dispatch order as plain FIFO.
    auto fifo = sched.run(queue, FifoPolicy{});
    for (std::size_t i = 0; i < out.runs.size(); ++i)
        EXPECT_EQ(out.runs[i].model, fifo.runs[i].model);
}

// ------------------------------------- device cluster / placement

TEST(Cluster, PlanTimesFollowsTheTwoResourceRule)
{
    // Serialized device: init and exec back to back from `now`.
    ClusterConfig serial_cfg;
    DeviceCluster serial(serial_cfg);
    auto t = serial.planTimes(0, 100, 40, 60);
    EXPECT_EQ(t.start, 100);
    EXPECT_EQ(t.initDone, 140);
    EXPECT_EQ(t.end, 200);
    serial.commit(0, ModelId::ResNet50, mib(512), t);
    EXPECT_FALSE(serial.canAccept(0, 150));
    EXPECT_TRUE(serial.anyAccepting(200) == false); // still in flight
    serial.complete(0);
    EXPECT_TRUE(serial.canAccept(0, 200));

    // Overlap: the next run's preload starts when the DMA queue
    // frees, and its compute queues behind the previous run.
    ClusterConfig ov_cfg;
    ov_cfg.overlapInitWithExec = true;
    DeviceCluster ov(ov_cfg);
    auto a = ov.planTimes(0, 0, 40, 60);
    ov.commit(0, ModelId::ResNet50, mib(512), a);
    EXPECT_EQ(a.end, 100);
    // DMA frees at 40; a second request dispatched then overlaps.
    EXPECT_TRUE(ov.canAccept(0, 40));
    auto b = ov.planTimes(0, 40, 40, 60);
    EXPECT_EQ(b.start, 40);
    EXPECT_EQ(b.initDone, 80);
    EXPECT_EQ(b.end, 160); // compute waits for a's end at 100
    ov.commit(0, ModelId::ResNet50, mib(512), b);
    // Pipeline depth 2: no third request until a completes.
    EXPECT_FALSE(ov.canAccept(0, 80));
    ov.complete(0);
    EXPECT_TRUE(ov.canAccept(0, 100));

    // Plan residency accounting: same budget re-uses the resident
    // plan, a different budget counts a switch.
    EXPECT_EQ(ov.devices()[0].planSwitches, 1);
    ov.commit(0, ModelId::ResNet50, mib(256),
              ov.planTimes(0, 100, 40, 60));
    EXPECT_EQ(ov.devices()[0].planSwitches, 2);
}

TEST(Cluster, TwoDevicesRunSimultaneousArrivalsInParallel)
{
    FlashMem fm(DeviceProfile::onePlus12());
    auto queue = chainWorkload({ModelId::ResNet50, ModelId::ResNet50},
                               /*gap=*/0);

    EventScheduler single(fm);
    auto serial = single.run(queue, FifoPolicy{});

    SchedulerConfig cfg;
    cfg.cluster.deviceCount = 2;
    EventScheduler sched(fm, cfg);
    auto out = sched.run(queue, FifoPolicy{});
    ASSERT_EQ(out.runs.size(), 2u);
    // Both dispatch at t=0 on distinct devices; the queue-behind-the-
    // first latency of the serialized device disappears.
    EXPECT_EQ(out.runs[0].start, 0);
    EXPECT_EQ(out.runs[1].start, 0);
    EXPECT_EQ(out.runs[0].device, 0);
    EXPECT_EQ(out.runs[1].device, 1);
    EXPECT_LT(out.makespan, serial.makespan);
    EXPECT_EQ(out.makespan, serial.runs[0].end);
    ASSERT_EQ(out.devices.size(), 2u);
    EXPECT_EQ(out.devices[0].dispatched, 1u);
    EXPECT_EQ(out.devices[1].dispatched, 1u);
}

TEST(Cluster, LeastLoadedTieBreaksDeterministically)
{
    // Equal-load (idle) devices: the lowest id wins, and the whole
    // schedule is reproducible run to run.
    FlashMem fm(DeviceProfile::onePlus12());
    SchedulerConfig cfg;
    cfg.cluster.deviceCount = 3;
    auto queue = interleavedWorkload(
        {ModelId::ResNet50, ModelId::DepthAnythingS}, 3,
        milliseconds(5), 7);

    EventScheduler sched(fm, cfg);
    auto a = sched.run(queue, FifoPolicy{});
    auto b = sched.run(queue, FifoPolicy{});
    ASSERT_EQ(a.runs.size(), queue.size());
    EXPECT_EQ(a.runs[0].device, 0); // first pick on the lowest id
    ASSERT_EQ(a.runs.size(), b.runs.size());
    for (std::size_t i = 0; i < a.runs.size(); ++i) {
        EXPECT_EQ(a.runs[i].device, b.runs[i].device);
        EXPECT_EQ(a.runs[i].start, b.runs[i].start);
        EXPECT_EQ(a.runs[i].end, b.runs[i].end);
    }
}

TEST(Cluster, RoundRobinCyclesDevices)
{
    FlashMem fm(DeviceProfile::onePlus12());
    SchedulerConfig cfg;
    cfg.cluster.deviceCount = 2;
    cfg.cluster.placement = PlacementKind::RoundRobin;
    EventScheduler sched(fm, cfg);
    // Spread arrivals so every dispatch sees both devices idle: the
    // cursor, not load, must cycle the placement.
    auto queue = chainWorkload({ModelId::ResNet50, ModelId::ResNet50,
                                ModelId::ResNet50, ModelId::ResNet50},
                               seconds(2));
    auto out = sched.run(queue, FifoPolicy{});
    ASSERT_EQ(out.runs.size(), 4u);
    EXPECT_EQ(out.runs[0].device, 0);
    EXPECT_EQ(out.runs[1].device, 1);
    EXPECT_EQ(out.runs[2].device, 0);
    EXPECT_EQ(out.runs[3].device, 1);
}

TEST(Cluster, CapacityAffinityAvoidsPlanSwitches)
{
    // One model, two requests far apart. Least-loaded sends the
    // second request to the idle-longest device 1 (a second plan
    // residency); capacity affinity routes it back to device 0,
    // which already holds the model's plan at the target budget.
    FlashMem fm(DeviceProfile::onePlus12());
    std::vector<ModelRequest> queue{
        {ModelId::ResNet50, 0, 0, 0},
        {ModelId::ResNet50, seconds(2), 0, 0},
    };

    SchedulerConfig ll_cfg;
    ll_cfg.cluster.deviceCount = 2;
    EventScheduler ll_sched(fm, ll_cfg);
    auto ll = ll_sched.run(queue, FifoPolicy{});
    ASSERT_EQ(ll.runs.size(), 2u);
    EXPECT_EQ(ll.runs[0].device, 0);
    EXPECT_EQ(ll.runs[1].device, 1);
    EXPECT_EQ(ll.devices[0].planSwitches + ll.devices[1].planSwitches,
              2);

    SchedulerConfig af_cfg;
    af_cfg.cluster.deviceCount = 2;
    af_cfg.cluster.placement = PlacementKind::CapacityAffinity;
    EventScheduler af_sched(fm, af_cfg);
    auto af = af_sched.run(queue, FifoPolicy{});
    ASSERT_EQ(af.runs.size(), 2u);
    EXPECT_EQ(af.runs[0].device, 0);
    EXPECT_EQ(af.runs[1].device, 0); // resident plan, no re-plan
    EXPECT_EQ(af.devices[0].planSwitches, 1);
    EXPECT_EQ(af.devices[1].planSwitches, 0);
    // Identical timelines otherwise: the model was already planned.
    EXPECT_EQ(af.makespan, ll.makespan);
}

TEST(Cluster, OverlapImprovesBackToBackMakespan)
{
    // Back-to-back LLM requests on one device: with cross-request
    // overlap each request's streamed preload runs on the DMA queue
    // while the previous request computes, so every run after the
    // first hides its full init phase.
    FlashMem fm(DeviceProfile::onePlus12());
    auto queue = chainWorkload(
        {ModelId::GPTNeoS, ModelId::GPTNeoS, ModelId::GPTNeoS},
        /*gap=*/0);

    EventScheduler serial_sched(fm);
    auto serial = serial_sched.run(queue, FifoPolicy{});

    SchedulerConfig cfg;
    cfg.cluster.overlapInitWithExec = true;
    EventScheduler sched(fm, cfg);
    auto out = sched.run(queue, FifoPolicy{});
    ASSERT_EQ(out.runs.size(), 3u);

    SimTime service = serial.runs[0].integratedLatency();
    SimTime init = out.runs[0].initLatency();
    SimTime exec = out.runs[0].execLatency();
    ASSERT_GT(init, 0);
    // First run is identical to the serialized one.
    EXPECT_EQ(out.runs[0].start, 0);
    EXPECT_EQ(out.runs[0].end, service);
    // The two-resource recurrence: each run's preload starts when the
    // DMA queue frees and a pipeline slot opens (the run before the
    // previous one completed), and its compute phase queues behind
    // the previous run's end.
    for (std::size_t i = 1; i < out.runs.size(); ++i) {
        SimTime slot_free =
            i >= 2 ? out.runs[i - 2].end : SimTime{0};
        EXPECT_EQ(out.runs[i].start,
                  std::max(out.runs[i - 1].initDone, slot_free));
        EXPECT_EQ(out.runs[i].initDone, out.runs[i].start + init);
        EXPECT_EQ(out.runs[i].end,
                  std::max(out.runs[i].initDone,
                           out.runs[i - 1].end) +
                      exec);
    }
    // Every run after the first hides (part of) its init behind the
    // predecessor's compute: the pipelined makespan beats serial,
    // and equals the recurrence unrolled from the solo profile.
    EXPECT_EQ(serial.makespan, 3 * service);
    SimTime e0 = service;
    SimTime e1 = std::max(2 * init, e0) + exec;
    SimTime s2 = std::max(2 * init, e0);
    SimTime e2 = std::max(s2 + init, e1) + exec;
    EXPECT_EQ(out.makespan, e2);
    EXPECT_LT(out.makespan, serial.makespan);

    // DMA-busy accounting reports the overlapped init work directly.
    ASSERT_EQ(out.devices.size(), 1u);
    EXPECT_EQ(out.devices[0].dmaBusyTime, 3 * init);
    EXPECT_GT(out.devices[0].dmaUtilization, 0.0);
    EXPECT_LE(out.devices[0].computeUtilization, 1.0);
}

TEST(Cluster, PerDeviceUtilizationAccountsAllDispatchedWork)
{
    FlashMem fm(DeviceProfile::onePlus12());
    SchedulerConfig cfg;
    cfg.cluster.deviceCount = 2;
    EventScheduler sched(fm, cfg);
    auto queue = interleavedWorkload(
        {ModelId::ResNet50, ModelId::DepthAnythingS}, 2,
        milliseconds(10), 5);
    auto out = sched.run(queue, FifoPolicy{});
    ASSERT_EQ(out.devices.size(), 2u);

    std::size_t dispatched = 0;
    SimTime busy = 0;
    for (const auto &d : out.devices) {
        dispatched += d.dispatched;
        busy += d.computeBusyTime + d.dmaBusyTime;
        EXPECT_GE(d.computeUtilization, 0.0);
        EXPECT_LE(d.computeUtilization, 1.0);
        EXPECT_GE(d.dmaUtilization, 0.0);
        EXPECT_LE(d.dmaUtilization, 1.0);
        EXPECT_GT(d.peakMemory, 0u);
    }
    EXPECT_EQ(dispatched, out.runs.size());
    // Serialized devices: per-run init + exec phases partition each
    // run, so summed busy time equals summed integrated latency.
    SimTime integrated = 0;
    for (const auto &r : out.runs)
        integrated += r.integratedLatency();
    EXPECT_EQ(busy, integrated);
}

TEST(Cluster, PreloadPathShardsButNeverOverlaps)
{
    // The preloading baselines support multi-device sharding, but
    // cross-request overlap is forced off: their init is not a
    // streamed DMA-queue phase — re-initializing per request on the
    // serialized device is exactly the overhead the paper targets.
    auto dev = DeviceProfile::onePlus12();
    auto queue = chainWorkload({ModelId::ResNet50, ModelId::ResNet50},
                               /*gap=*/0);
    ClusterConfig cluster;
    cluster.deviceCount = 2;
    cluster.overlapInitWithExec = true; // ignored by the baselines
    auto out = EventScheduler::runPreload(
        baselines::FrameworkId::MNN, dev, queue, FifoPolicy{},
        Precision::FP16, cluster);
    ASSERT_EQ(out.runs.size(), 2u);
    EXPECT_EQ(out.runs[0].device, 0);
    EXPECT_EQ(out.runs[1].device, 1);
    EXPECT_EQ(out.runs[0].start, 0);
    EXPECT_EQ(out.runs[1].start, 0);
    ASSERT_EQ(out.devices.size(), 2u);
    EXPECT_EQ(out.devices[0].dispatched, 1u);
    EXPECT_EQ(out.devices[1].dispatched, 1u);
}

// ------------------------------------------------------- FIFO thin shim

TEST(FifoScheduler, ThinWrapperMatchesEventScheduler)
{
    FlashMem fm(DeviceProfile::onePlus12());
    auto queue = chainWorkload({ModelId::ResNet50,
                                ModelId::DepthAnythingS},
                               milliseconds(5));
    auto wrapped = FifoScheduler::runFlashMem(fm, queue);
    EventScheduler sched(fm);
    auto direct = sched.run(queue, FifoPolicy{});
    ASSERT_EQ(wrapped.runs.size(), direct.runs.size());
    EXPECT_EQ(wrapped.makespan, direct.makespan);
    EXPECT_EQ(wrapped.peakMemory, direct.peakMemory);
    for (std::size_t i = 0; i < wrapped.runs.size(); ++i) {
        EXPECT_EQ(wrapped.runs[i].start, direct.runs[i].start);
        EXPECT_EQ(wrapped.runs[i].end, direct.runs[i].end);
    }
}

// ------------------------------------------------------ fault injection

TEST(Faults, PlanGeneratorIsSeededAndDeviceStable)
{
    FaultPlanParams p;
    p.crashesPerSecond = 2.0;
    p.stallsPerSecond = 3.0;
    p.slowdownsPerSecond = 1.0;
    p.dmaErrorsPerSecond = 2.0;

    auto a = generateFaultPlan(p, 4, seconds(10), 99);
    auto b = generateFaultPlan(p, 4, seconds(10), 99);
    ASSERT_FALSE(a.empty());
    ASSERT_EQ(a.events.size(), b.events.size());
    for (std::size_t i = 0; i < a.events.size(); ++i) {
        EXPECT_EQ(a.events[i].time, b.events[i].time);
        EXPECT_EQ(a.events[i].device, b.events[i].device);
        EXPECT_EQ(a.events[i].kind, b.events[i].kind);
        EXPECT_EQ(a.events[i].duration, b.events[i].duration);
        EXPECT_EQ(a.events[i].factor, b.events[i].factor);
    }

    // Events are sorted, on valid devices, and every crash has its
    // rejoin later on the same device.
    std::map<int, int> crash_balance;
    for (std::size_t i = 0; i < a.events.size(); ++i) {
        const auto &e = a.events[i];
        EXPECT_GE(e.device, 0);
        EXPECT_LT(e.device, 4);
        if (i > 0) {
            EXPECT_LE(a.events[i - 1].time, e.time);
        }
        if (e.kind == FaultKind::Crash) {
            EXPECT_EQ(crash_balance[e.device], 0);
            ++crash_balance[e.device];
        } else if (e.kind == FaultKind::Rejoin) {
            EXPECT_EQ(crash_balance[e.device], 1);
            --crash_balance[e.device];
        }
    }

    // Growing the cluster never shifts an existing device's timeline:
    // the 8-device plan restricted to devices 0-3 is exactly the
    // 4-device plan (independent per-device streams).
    auto c = generateFaultPlan(p, 8, seconds(10), 99);
    std::vector<FaultEvent> low;
    for (const auto &e : c.events) {
        if (e.device < 4)
            low.push_back(e);
    }
    ASSERT_EQ(low.size(), a.events.size());
    for (std::size_t i = 0; i < low.size(); ++i) {
        EXPECT_EQ(low[i].time, a.events[i].time);
        EXPECT_EQ(low[i].device, a.events[i].device);
        EXPECT_EQ(low[i].kind, a.events[i].kind);
    }

    // A different seed produces a different schedule.
    auto d = generateFaultPlan(p, 4, seconds(10), 100);
    bool differs = d.events.size() != a.events.size();
    for (std::size_t i = 0; !differs && i < a.events.size(); ++i)
        differs = a.events[i].time != d.events[i].time;
    EXPECT_TRUE(differs);
}

TEST(Faults, ClusterHealthStateMachine)
{
    ClusterConfig cc;
    cc.deviceCount = 2;
    cc.overlapInitWithExec = true;
    DeviceCluster cluster(cc);

    // A healthy overlap device pipelines two requests.
    auto t = cluster.planTimes(0, 0, milliseconds(2), milliseconds(10));
    cluster.commit(0, ModelId::ResNet50, mib(512), t);
    EXPECT_TRUE(cluster.canAccept(0, t.initDone));

    // Crash: Down, nothing accepted, plan residency wiped.
    cluster.crash(0, milliseconds(5));
    const auto &d0 = cluster.devices()[0];
    EXPECT_EQ(d0.health, DeviceHealth::Down);
    EXPECT_TRUE(d0.crashDown);
    EXPECT_FALSE(cluster.canAccept(0, milliseconds(6)));
    EXPECT_TRUE(d0.residentPlanBudget.empty());
    EXPECT_TRUE(cluster.anyAccepting(milliseconds(6))); // device 1

    // Rejoin: Suspect, probation caps the pipeline at depth 1.
    cluster.rejoin(0, milliseconds(105), /*probation=*/milliseconds(50));
    EXPECT_EQ(d0.health, DeviceHealth::Suspect);
    EXPECT_EQ(d0.downTime, milliseconds(100));
    EXPECT_TRUE(cluster.canAccept(0, milliseconds(110)));
    auto t2 = cluster.planTimes(0, milliseconds(110), milliseconds(2),
                                milliseconds(10));
    cluster.commit(0, ModelId::ResNet50, mib(512), t2);
    // Inside probation: one in flight saturates the probe.
    EXPECT_FALSE(cluster.canAccept(0, milliseconds(113)));
    // Past probation: full overlap depth again.
    EXPECT_TRUE(cluster.canAccept(0, milliseconds(160)));
    cluster.complete(0);

    // Slowdown scales only dispatches placed inside the window.
    cluster.setSlowdown(1, 2.0, milliseconds(300));
    auto s = cluster.planTimes(1, milliseconds(200), milliseconds(2),
                               milliseconds(10));
    EXPECT_EQ(s.initDone - s.start, milliseconds(4));
    EXPECT_EQ(s.end - s.initDone, milliseconds(20));
    auto s2 = cluster.planTimes(1, milliseconds(300), milliseconds(2),
                                milliseconds(10));
    EXPECT_EQ(s2.end - s2.start, milliseconds(12));

    // Stall shifts an idle device's horizons to now + duration.
    cluster.delay(1, milliseconds(400), milliseconds(50));
    EXPECT_EQ(cluster.devices()[1].computeBusyUntil, milliseconds(450));
    EXPECT_EQ(cluster.devices()[1].dmaBusyUntil, milliseconds(450));

    // A transient DMA abort rolls the youngest commit back exactly.
    const auto &d1 = cluster.devices()[1];
    auto dispatched_before = d1.dispatched;
    auto switches_before = d1.planSwitches;
    auto t3 = cluster.planTimes(1, milliseconds(500), milliseconds(2),
                                milliseconds(10));
    cluster.commit(1, ModelId::ResNet50, mib(512), t3);
    EXPECT_EQ(d1.inFlight, 1);
    cluster.abortLastCommit(1);
    EXPECT_EQ(d1.inFlight, 0);
    EXPECT_EQ(d1.dispatched, dispatched_before);
    EXPECT_EQ(d1.planSwitches, switches_before);
    EXPECT_EQ(d1.computeBusyUntil, milliseconds(450));
    EXPECT_EQ(d1.dmaBusyUntil, milliseconds(450));
    EXPECT_EQ(d1.residentPlanBudget.count(ModelId::ResNet50), 0u);

    // Downtime accounting covers a still-open Down interval.
    cluster.markDown(1, milliseconds(500));
    auto rows = cluster.utilization(milliseconds(600));
    EXPECT_EQ(rows[0].downTime, milliseconds(100));
    EXPECT_DOUBLE_EQ(rows[0].downFraction, 100.0 / 600.0);
    EXPECT_EQ(rows[1].downTime, milliseconds(100)); // 500 -> 600 open
}

TEST(Faults, CrashMidRunFailsOverToSurvivingDevice)
{
    FlashMem fm(DeviceProfile::onePlus12());
    std::vector<ModelRequest> queue{{ModelId::ResNet50, 0, 0, 0},
                                    {ModelId::ResNet50, 0, 0, 0}};

    SchedulerConfig cfg;
    cfg.cluster.deviceCount = 2;
    cfg.faults = singleCrash(0, /*at=*/1); // 1 ns in: mid-first-run
    EventScheduler sched(fm, cfg);
    auto out = sched.run(queue, FifoPolicy{});

    // The killed dispatch retried on the survivor; nothing was lost.
    ASSERT_EQ(out.runs.size(), 2u);
    EXPECT_TRUE(out.shed.empty());
    EXPECT_EQ(out.faults.crashes, 1);
    EXPECT_EQ(out.faults.retries, 1);
    EXPECT_EQ(out.faults.failovers, 1);
    EXPECT_EQ(out.faults.faultSheds, 0);
    EXPECT_EQ(out.faults.timeouts, 0);
    for (const auto &r : out.runs)
        EXPECT_EQ(r.device, 1);
    // The retry waited out its backoff before re-dispatching.
    EXPECT_GE(out.runs.back().start,
              1 + cfg.recovery.backoffBase);
    // The dead device's outage is accounted until the makespan.
    ASSERT_EQ(out.devices.size(), 2u);
    EXPECT_EQ(out.devices[0].downTime, out.makespan - 1);
    EXPECT_GT(out.devices[0].downFraction, 0.9);
}

TEST(Faults, StallWithinBudgetCompletesLateNotKilled)
{
    FlashMem fm(DeviceProfile::onePlus12());
    std::vector<ModelRequest> queue{{ModelId::ResNet50, 0, 0, 0}};

    // Fault-free reference (forced through the fault dispatch route
    // by an inert far-future fault, so timing rules are identical).
    SchedulerConfig ref_cfg;
    ref_cfg.faults = singleStall(0, seconds(1000), 1);
    EventScheduler ref_sched(fm, ref_cfg);
    auto ref = ref_sched.run(queue, FifoPolicy{});
    ASSERT_EQ(ref.runs.size(), 1u);
    const SimTime service = ref.runs[0].end - ref.runs[0].start;

    // A stall shorter than the timeout slack shifts the completion by
    // exactly its duration — no watchdog, no retry.
    const SimTime stall = service; // 2x service < 3x budget
    SchedulerConfig cfg;
    cfg.faults = singleStall(0, /*at=*/1, stall);
    EventScheduler sched(fm, cfg);
    auto out = sched.run(queue, FifoPolicy{});

    ASSERT_EQ(out.runs.size(), 1u);
    EXPECT_EQ(out.runs[0].end, ref.runs[0].end + stall);
    EXPECT_EQ(out.faults.timeouts, 0);
    EXPECT_EQ(out.faults.retries, 0);
    EXPECT_EQ(out.devices[0].downTime, 0);
}

TEST(Faults, StallBeyondBudgetTriggersWatchdogFailover)
{
    FlashMem fm(DeviceProfile::onePlus12());
    std::vector<ModelRequest> queue{{ModelId::ResNet50, 0, 0, 0}};

    SchedulerConfig cfg;
    cfg.cluster.deviceCount = 2;
    // A multi-second wedge blows the 3x timeout budget of any model.
    cfg.faults = singleStall(0, /*at=*/1, seconds(5));
    EventScheduler sched(fm, cfg);
    auto out = sched.run(queue, FifoPolicy{});

    ASSERT_EQ(out.runs.size(), 1u);
    EXPECT_EQ(out.runs[0].device, 1); // failed over to the survivor
    EXPECT_EQ(out.faults.timeouts, 1);
    EXPECT_EQ(out.faults.retries, 1);
    EXPECT_EQ(out.faults.failovers, 1);
    EXPECT_EQ(out.faults.crashes, 0); // wedged, not crashed
    EXPECT_TRUE(out.shed.empty());
    EXPECT_GT(out.devices[0].downTime, 0);
    // The watchdog fired at the blown budget, well before the wedge
    // cleared, so the retry did not wait out the whole stall.
    EXPECT_LT(out.runs[0].end, seconds(5));
}

TEST(Faults, RetryBudgetExhaustionFaultSheds)
{
    FlashMem fm(DeviceProfile::onePlus12());
    std::vector<ModelRequest> queue{{ModelId::ResNet50, 0, 0, 0}};

    SchedulerConfig cfg;
    cfg.faults = singleCrash(0, /*at=*/1);
    cfg.recovery.maxRetries = 0; // first kill exhausts the budget
    EventScheduler sched(fm, cfg);
    auto out = sched.run(queue, FifoPolicy{});

    EXPECT_TRUE(out.runs.empty());
    ASSERT_EQ(out.shed.size(), 1u);
    EXPECT_EQ(out.shed[0].reason, DropReason::FaultBudget);
    EXPECT_EQ(out.faults.faultSheds, 1);
    EXPECT_EQ(out.faults.retries, 0);
    EXPECT_EQ(out.goodput(), 0u);
}

TEST(Faults, StarvedRequestsAreRecordedNotSilentlyDropped)
{
    FlashMem fm(DeviceProfile::onePlus12());
    std::vector<ModelRequest> queue{
        {ModelId::ResNet50, 0, 0, 0},
        {ModelId::ResNet50, milliseconds(1), 0, 0}};

    // The only device crashes and never rejoins: the in-flight run's
    // retry and the queued arrival both end the drain starved.
    SchedulerConfig cfg;
    cfg.faults = singleCrash(0, /*at=*/1);
    EventScheduler sched(fm, cfg);
    auto out = sched.run(queue, FifoPolicy{});

    EXPECT_TRUE(out.runs.empty());
    ASSERT_EQ(out.shed.size(), 2u);
    for (const auto &s : out.shed)
        EXPECT_EQ(s.reason, DropReason::Starved);
    EXPECT_EQ(out.faults.starved, 2);
    EXPECT_EQ(out.faults.crashes, 1);
    EXPECT_EQ(out.faults.retries, 1); // the kill scheduled one retry
}

TEST(Faults, FlappingDeviceNeverDeadlocksOrLosesRequests)
{
    FlashMem fm(DeviceProfile::onePlus12());
    std::vector<ModelRequest> queue;
    for (int i = 0; i < 8; ++i)
        queue.push_back(
            {ModelId::ResNet50, i * milliseconds(5), 0, 0});

    SchedulerConfig cfg;
    cfg.cluster.deviceCount = 2;
    cfg.faults = flappingDevice(0, /*firstCrash=*/milliseconds(2),
                                /*period=*/milliseconds(40),
                                /*downFor=*/milliseconds(20),
                                /*cycles=*/5);
    EventScheduler sched(fm, cfg);
    auto out = sched.run(queue, FifoPolicy{});

    // Terminates (no deadlock) with every request accounted for:
    // completed, fault-shed, or starved — never vanished.
    EXPECT_EQ(out.runs.size() + out.shed.size(), queue.size());
    EXPECT_GE(out.faults.crashes, 2);
    for (const auto &s : out.shed)
        EXPECT_NE(s.reason, DropReason::Admission); // FIFO never sheds
    // Flap downtime is accounted on the flapping device only.
    EXPECT_GT(out.devices[0].downTime, 0);
    EXPECT_EQ(out.devices[1].downTime, 0);
}

TEST(Faults, StuckClockGuardPanicsLoudly)
{
    FlashMem fm(DeviceProfile::onePlus12());
    // Three simultaneous arrivals share one instant; a stuck limit of
    // one event per instant trips the guard deterministically.
    std::vector<ModelRequest> queue{{ModelId::ResNet50, 0, 0, 0},
                                    {ModelId::ResNet50, 0, 0, 0},
                                    {ModelId::ResNet50, 0, 0, 0}};
    SchedulerConfig cfg;
    cfg.recovery.stuckEventLimit = 1;
    EventScheduler sched(fm, cfg);
    EXPECT_DEATH(sched.run(queue, FifoPolicy{}), "event loop stuck");
}

} // namespace
} // namespace flashmem::multidnn
