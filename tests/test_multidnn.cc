/**
 * @file
 * Tests for the event-driven multi-DNN scheduler: the event loop,
 * queueing-delay latency accounting, policy ordering (FIFO / SJF /
 * priority-with-aging / memory-aware admission), and on-device
 * re-planning — including its bit-determinism across planner thread
 * counts and across a warm PlanMemo.
 */

#include <gtest/gtest.h>

#include <map>

#include "core/flashmem.hh"
#include "graph/builder.hh"
#include "multidnn/fifo_scheduler.hh"
#include "multidnn/scheduler.hh"

namespace flashmem::multidnn {
namespace {

using core::FlashMem;
using core::FlashMemOptions;
using gpusim::DeviceProfile;
using gpusim::GpuSimulator;
using models::ModelId;

// ------------------------------------------------------------ event loop

TEST(EventScheduler, EmptyQueueIsANoOp)
{
    FlashMem fm(DeviceProfile::onePlus12());
    EventScheduler sched(fm);
    auto out = sched.run({}, FifoPolicy{});
    EXPECT_TRUE(out.runs.empty());
    EXPECT_EQ(out.makespan, 0);
    EXPECT_EQ(out.peakMemory, 0u);
    EXPECT_EQ(out.energyJoules, 0.0);
    EXPECT_EQ(out.meanLatency(), 0);
    EXPECT_EQ(out.meanQueueDelay(), 0);
    EXPECT_TRUE(out.trace.empty());
}

TEST(EventScheduler, FifoPolicyMatchesSeedFifoDrain)
{
    // The event-driven drain under the FIFO policy must reproduce the
    // seed scheduler (compile once, run in order, start at
    // max(arrival, device free)) exactly.
    FlashMem fm(DeviceProfile::onePlus12());
    auto queue = interleavedWorkload(
        {ModelId::ResNet50, ModelId::DepthAnythingS}, 2,
        milliseconds(20), 11);

    EventScheduler sched(fm);
    auto out = sched.run(queue, FifoPolicy{});
    ASSERT_EQ(out.runs.size(), queue.size());

    // Reference drain, replicating the seed FIFO scheduler inline.
    std::map<ModelId, core::CompiledModel> compiled;
    for (const auto &req : queue) {
        if (!compiled.count(req.model))
            compiled.emplace(req.model,
                             fm.compile(models::buildModel(req.model)));
    }
    GpuSimulator sim(fm.device());
    SimTime free_at = 0;
    for (std::size_t i = 0; i < queue.size(); ++i) {
        SimTime start = std::max(queue[i].arrival, free_at);
        auto r = fm.execute(sim, compiled.at(queue[i].model), start);
        EXPECT_EQ(out.runs[i].model, r.model);
        EXPECT_EQ(out.runs[i].start, r.start);
        EXPECT_EQ(out.runs[i].end, r.end);
        EXPECT_EQ(out.runs[i].arrival, queue[i].arrival);
        free_at = r.end;
    }
    EXPECT_EQ(out.makespan, free_at);
}

TEST(EventScheduler, TraceLivesInTheOutcome)
{
    // No mutable global state: each outcome owns its memory trace, and
    // a later run does not disturb an earlier outcome.
    FlashMem fm(DeviceProfile::onePlus12());
    EventScheduler sched(fm);
    auto queue = chainWorkload({ModelId::ResNet50});
    auto first = sched.run(queue, FifoPolicy{});
    ASSERT_FALSE(first.trace.empty());
    EXPECT_EQ(static_cast<Bytes>(
                  first.trace.maxOver(0, first.makespan)),
              first.peakMemory);
    auto first_points = first.trace.points().size();
    auto second = sched.run(queue, FifoPolicy{});
    EXPECT_EQ(first.trace.points().size(), first_points);
    EXPECT_EQ(static_cast<Bytes>(
                  second.trace.maxOver(0, second.makespan)),
              second.peakMemory);
}

// ------------------------------------------- queueing-delay accounting

TEST(EventScheduler, MeanLatencyIncludesQueueingDelay)
{
    // Two same-time arrivals: the second request waits for the whole
    // first run, and that wait is part of its latency.
    FlashMem fm(DeviceProfile::onePlus12());
    EventScheduler sched(fm);
    auto queue = chainWorkload({ModelId::ResNet50, ModelId::ResNet50},
                               /*gap=*/0);
    auto out = sched.run(queue, FifoPolicy{});
    ASSERT_EQ(out.runs.size(), 2u);

    const auto &r0 = out.runs[0];
    const auto &r1 = out.runs[1];
    EXPECT_EQ(r0.arrival, 0);
    EXPECT_EQ(r1.arrival, 0);
    EXPECT_EQ(r0.queueDelay(), 0);
    // The second request queued behind the first for its full run.
    EXPECT_EQ(r1.start, r0.end);
    EXPECT_EQ(r1.queueDelay(), r0.end);
    EXPECT_EQ(r1.requestLatency(),
              r1.integratedLatency() + r1.queueDelay());
    EXPECT_GT(r1.requestLatency(), r1.integratedLatency());
    // Mean latency is the mean of end - arrival, not end - start.
    EXPECT_EQ(out.meanLatency(),
              (r0.requestLatency() + r1.requestLatency()) / 2);
    EXPECT_GT(out.meanLatency(),
              (r0.integratedLatency() + r1.integratedLatency()) / 2);
}

TEST(EventScheduler, StandaloneRunsHaveZeroQueueDelay)
{
    FlashMem fm(DeviceProfile::onePlus12());
    auto r = fm.runOnce(models::buildModel(ModelId::ResNet50));
    EXPECT_EQ(r.queueDelay(), 0);
    EXPECT_EQ(r.requestLatency(), r.integratedLatency());
}

// --------------------------------------------------------------- policies

TEST(Policies, SjfRunsShortJobsFirst)
{
    // GPT-Neo S is far slower than ResNet50; with both ready at t=0
    // and the slow one first in the queue, SJF must flip the order.
    FlashMem fm(DeviceProfile::onePlus12());
    EventScheduler sched(fm);
    auto queue = chainWorkload({ModelId::GPTNeoS, ModelId::ResNet50},
                               /*gap=*/0);

    auto fifo = sched.run(queue, FifoPolicy{});
    ASSERT_EQ(fifo.runs.size(), 2u);
    EXPECT_EQ(fifo.runs[0].model, "gptneo_s");

    auto sjf = sched.run(queue, SjfPolicy{});
    ASSERT_EQ(sjf.runs.size(), 2u);
    EXPECT_EQ(sjf.runs[0].model, "resnet50");
    // Same total work — but the short job no longer queues behind the
    // long one, so mean latency improves while makespan stays put.
    EXPECT_EQ(sjf.makespan, fifo.makespan);
    EXPECT_LT(sjf.meanLatency(), fifo.meanLatency());
}

TEST(Policies, PriorityOrdersAndAgingPreventsStarvation)
{
    FlashMem fm(DeviceProfile::onePlus12());
    EventScheduler sched(fm);

    // One low-priority request at t=0 and a staggered stream of
    // high-priority ones (a ResNet50 run is ~50 ms, so the backlog
    // never drains): without aging the low-priority request starves
    // to the back of the queue.
    std::vector<ModelRequest> queue;
    queue.push_back({ModelId::DepthAnythingS, 0, /*priority=*/0});
    for (int i = 0; i < 4; ++i)
        queue.push_back({ModelId::ResNet50, milliseconds(30 * i),
                         /*priority=*/5});

    PriorityAgingPolicy no_aging(/*aging_quantum=*/seconds(1e6));
    auto strict = sched.run(queue, no_aging);
    ASSERT_EQ(strict.runs.size(), queue.size());
    EXPECT_EQ(strict.runs.back().model, "depth_anything_s");
    for (std::size_t i = 0; i + 1 < strict.runs.size(); ++i)
        EXPECT_EQ(strict.runs[i].model, "resnet50");

    // With a small quantum the waiting request out-ages the fresher
    // high-priority arrivals (its head start in waiting time closes
    // the 5-level priority gap) and runs second instead of last.
    PriorityAgingPolicy aging(/*aging_quantum=*/milliseconds(4));
    auto aged = sched.run(queue, aging);
    ASSERT_EQ(aged.runs.size(), queue.size());
    EXPECT_EQ(aged.runs[1].model, "depth_anything_s");
}

TEST(Policies, MakePolicyCoversAllKinds)
{
    for (auto kind : allPolicyKinds()) {
        auto p = makePolicy(kind);
        ASSERT_NE(p, nullptr);
        EXPECT_NE(std::string(p->name()), "");
    }
    EXPECT_TRUE(MemoryAwarePolicy{}.memoryAware());
    EXPECT_FALSE(FifoPolicy{}.memoryAware());
}

// ------------------------------------------ deadline / SLO admission

TEST(Deadline, BoundedRequestBehindLongLlmRunIsShedNotBlown)
{
    // A long GPT-Neo run holds the device; a ResNet50 with a tight
    // latency bound arrives just after. By the time the device frees,
    // the bound cannot be met even if dispatched immediately —
    // deadline admission sheds it instead of blowing its SLO, and the
    // shed request does not count toward goodput.
    FlashMem fm(DeviceProfile::onePlus12());
    EventScheduler sched(fm);
    std::vector<ModelRequest> queue{
        {ModelId::GPTNeoS, 0, 0, 0},
        {ModelId::ResNet50, milliseconds(1), 0,
         /*latencyBound=*/milliseconds(60)},
    };

    // FIFO runs it anyway and blows the bound.
    auto fifo = sched.run(queue, FifoPolicy{});
    ASSERT_EQ(fifo.runs.size(), 2u);
    EXPECT_FALSE(fifo.runs[1].metSlo());
    EXPECT_EQ(fifo.goodput(), 1u);
    EXPECT_EQ(fifo.sloViolations(), 1u);
    EXPECT_TRUE(fifo.shed.empty());

    auto out = sched.run(queue, DeadlinePolicy{});
    ASSERT_EQ(out.runs.size(), 1u);
    EXPECT_EQ(out.runs[0].model, "gptneo_s");
    ASSERT_EQ(out.shed.size(), 1u);
    EXPECT_EQ(out.shed[0].queueIndex, 1u);
    EXPECT_EQ(out.shed[0].model, ModelId::ResNet50);
    EXPECT_EQ(out.shed[0].latencyBound, milliseconds(60));
    EXPECT_GE(out.shed[0].shedAt, out.runs[0].start);
    // Goodput counts only completed-in-bound runs; shed ones never do.
    EXPECT_EQ(out.goodput(), 1u);
    EXPECT_EQ(out.sloViolations(), 0u);
    EXPECT_DOUBLE_EQ(out.goodputRate(), 0.5);
    EXPECT_DOUBLE_EQ(out.shedRate(), 0.5);
}

TEST(Deadline, DegradeModeReplansInsteadOfShedding)
{
    // Same doomed request under Overload::Degrade: it still runs —
    // at a degraded (re-planned) budget that frees shared capacity —
    // and is counted as a violation, not a shed.
    FlashMem fm(DeviceProfile::onePlus12());
    EventScheduler sched(fm);
    std::vector<ModelRequest> queue{
        {ModelId::GPTNeoS, 0, 0, 0},
        {ModelId::ResNet50, milliseconds(1), 0, milliseconds(60)},
    };
    auto out = sched.run(
        queue, DeadlinePolicy{DeadlinePolicy::Overload::Degrade});
    ASSERT_EQ(out.runs.size(), 2u);
    EXPECT_TRUE(out.shed.empty());
    EXPECT_EQ(out.degradedRuns, 1);
    EXPECT_TRUE(out.runs[1].degraded);
    EXPECT_FALSE(out.runs[0].degraded);
    // The degraded dispatch re-planned the model at the smaller
    // budget through FlashMem::replan.
    EXPECT_GT(out.replans, 0);
    EXPECT_EQ(out.goodput(), 1u);
    EXPECT_EQ(out.sloViolations(), 1u);
    EXPECT_DOUBLE_EQ(out.shedRate(), 0.0);
}

TEST(Deadline, FeasibleBoundedRequestsRunAndMeetTheirSlo)
{
    FlashMem fm(DeviceProfile::onePlus12());
    EventScheduler sched(fm);
    std::vector<ModelRequest> queue{
        {ModelId::ResNet50, 0, 0, seconds(10)},
        {ModelId::DepthAnythingS, milliseconds(1), 0, seconds(10)},
    };
    auto out = sched.run(queue, DeadlinePolicy{});
    ASSERT_EQ(out.runs.size(), 2u);
    EXPECT_TRUE(out.shed.empty());
    EXPECT_EQ(out.goodput(), 2u);
    EXPECT_DOUBLE_EQ(out.goodputRate(), 1.0);
}

TEST(Deadline, EdfRunsEarlierDeadlineFirst)
{
    // Both ready while the device is busy; the later-queued request
    // has the earlier absolute deadline and must dispatch first.
    FlashMem fm(DeviceProfile::onePlus12());
    EventScheduler sched(fm);
    std::vector<ModelRequest> queue{
        {ModelId::GPTNeoS, 0, 0, 0},
        {ModelId::ResNet50, milliseconds(1), 0, seconds(30)},
        {ModelId::DepthAnythingS, milliseconds(2), 0, seconds(5)},
    };
    auto out = sched.run(queue, DeadlinePolicy{});
    ASSERT_EQ(out.runs.size(), 3u);
    EXPECT_EQ(out.runs[1].model, "depth_anything_s");
    EXPECT_EQ(out.runs[2].model, "resnet50");
}

// ------------------------------------------------- on-device re-planning

TEST(Replanning, ReplanShrinksInflightBudgetDeterministically)
{
    // Byte-identical re-plans across planner thread counts: the
    // stage/solve/merge pipeline makes each window solve a pure
    // function of its staged input, so the serialized plan cannot
    // depend on how many workers solved it — budget-truncated windows
    // included.
    auto g = models::buildModel(ModelId::ResNet50);
    auto replan_with_threads = [&](int threads) {
        core::PlanMemo memo(1024);
        FlashMemOptions opt;
        opt.opg.parallel.threads = threads;
        opt.opg.memo = &memo;
        FlashMem fm(DeviceProfile::onePlus12(), opt);
        auto compiled = fm.compile(g);
        auto replanned = fm.replan(compiled, mib(96));
        EXPECT_EQ(replanned.planBudget, mib(96));
        EXPECT_EQ(replanned.replans, 1);
        EXPECT_TRUE(replanned.plan.validate(replanned.fusedGraph,
                                            false));
        return replanned.plan.serialize();
    };
    auto t1 = replan_with_threads(1);
    auto t4 = replan_with_threads(4);
    EXPECT_EQ(t1, t4);
}

/** Small residual MLP whose plan windows exhaust (prove optimality)
 * within the decision budget — the regime where re-plans are provably
 * byte-identical even across a warm memo. */
graph::Graph
tinyReplanModel()
{
    graph::GraphBuilder b("replan_tiny", Precision::FP16);
    auto x = b.input({64, 256});
    for (int i = 0; i < 3; ++i) {
        std::string p = "blk" + std::to_string(i);
        auto n = b.layerNorm(x, p + ".ln");
        auto h = b.matmul(n, 1024, p + ".fc1");
        h = b.activation(h, graph::OpKind::GeLU, p + ".act");
        h = b.matmul(h, 256, p + ".fc2");
        x = b.add(x, h, p + ".res");
    }
    return b.build();
}

TEST(Replanning, ReplanIsByteIdenticalAcrossWarmMemo)
{
    // Re-planning the same budget twice through one memo: the second
    // pass warm-starts from the first's incumbents and must reproduce
    // the plan byte for byte (windows prove optimal, so the warm
    // start can only re-prove, never improve).
    auto g = tinyReplanModel();
    core::PlanMemo memo(1024);
    FlashMemOptions opt;
    opt.opg.memo = &memo;
    opt.opg.chunkBytes = kib(256);
    opt.opg.solverDecisionsPerWindow = 2000000;
    opt.opg.solverTimePerWindow = 10.0;
    FlashMem fm(DeviceProfile::onePlus12(), opt);
    auto compiled = fm.compile(g);

    auto cold = fm.replan(compiled, mib(4));
    ASSERT_EQ(cold.stats.overallStatus, solver::SolveStatus::Optimal);
    auto warm = fm.replan(compiled, mib(4));
    EXPECT_EQ(cold.plan.serialize(), warm.plan.serialize());
    EXPECT_GT(warm.planMemoHits, 0u);
}

TEST(Replanning, ReplanChangesThePlanUnderATighterBudget)
{
    // A genuinely shrunken budget forces more preloading (the
    // in-flight bound C2 tightens), so the sibling plan differs and
    // preloads at least as much.
    auto g = models::buildModel(ModelId::GPTNeoS);
    FlashMem fm(DeviceProfile::onePlus12());
    auto compiled = fm.compile(g);
    auto shrunk = fm.replan(compiled, mib(8));
    EXPECT_TRUE(shrunk.plan.validate(shrunk.fusedGraph, false));
    EXPECT_GE(shrunk.plan.preloadBytes(shrunk.fusedGraph),
              compiled.plan.preloadBytes(compiled.fusedGraph));
    EXPECT_LE(shrunk.overlapFraction(), compiled.overlapFraction());
}

TEST(Replanning, MemoryAwareAdmissionReplansUnderContention)
{
    // Three distinct models under a tight shared budget: admission
    // shrinks the per-model share, triggering re-plans; the outcome
    // stays a valid serialized schedule.
    FlashMem fm(DeviceProfile::onePlus12());
    SchedulerConfig cfg;
    cfg.capacityBudget = mib(768);
    EventScheduler sched(fm, cfg);
    auto queue = interleavedWorkload(
        {ModelId::ResNet50, ModelId::DepthAnythingS, ModelId::ViT}, 2,
        0, 3);
    auto out = sched.run(queue, MemoryAwarePolicy{});
    ASSERT_EQ(out.runs.size(), queue.size());
    EXPECT_GT(out.replans, 0);
    // Serialized device: runs never overlap.
    for (std::size_t i = 1; i < out.runs.size(); ++i)
        EXPECT_GE(out.runs[i].start, out.runs[i - 1].end);
    // FIFO selection underneath: same dispatch order as plain FIFO.
    auto fifo = sched.run(queue, FifoPolicy{});
    for (std::size_t i = 0; i < out.runs.size(); ++i)
        EXPECT_EQ(out.runs[i].model, fifo.runs[i].model);
}

// ------------------------------------- device cluster / placement

TEST(Cluster, PlanTimesFollowsTheTwoResourceRule)
{
    // Serialized device: init and exec back to back from `now`.
    ClusterConfig serial_cfg;
    DeviceCluster serial(serial_cfg);
    auto t = serial.planTimes(0, 100, 40, 60);
    EXPECT_EQ(t.start, 100);
    EXPECT_EQ(t.initDone, 140);
    EXPECT_EQ(t.end, 200);
    serial.commit(0, ModelId::ResNet50, mib(512), t);
    EXPECT_FALSE(serial.canAccept(0, 150));
    EXPECT_TRUE(serial.anyAccepting(200) == false); // still in flight
    serial.complete(0);
    EXPECT_TRUE(serial.canAccept(0, 200));

    // Overlap: the next run's preload starts when the DMA queue
    // frees, and its compute queues behind the previous run.
    ClusterConfig ov_cfg;
    ov_cfg.overlapInitWithExec = true;
    DeviceCluster ov(ov_cfg);
    auto a = ov.planTimes(0, 0, 40, 60);
    ov.commit(0, ModelId::ResNet50, mib(512), a);
    EXPECT_EQ(a.end, 100);
    // DMA frees at 40; a second request dispatched then overlaps.
    EXPECT_TRUE(ov.canAccept(0, 40));
    auto b = ov.planTimes(0, 40, 40, 60);
    EXPECT_EQ(b.start, 40);
    EXPECT_EQ(b.initDone, 80);
    EXPECT_EQ(b.end, 160); // compute waits for a's end at 100
    ov.commit(0, ModelId::ResNet50, mib(512), b);
    // Pipeline depth 2: no third request until a completes.
    EXPECT_FALSE(ov.canAccept(0, 80));
    ov.complete(0);
    EXPECT_TRUE(ov.canAccept(0, 100));

    // Plan residency accounting: same budget re-uses the resident
    // plan, a different budget counts a switch.
    EXPECT_EQ(ov.devices()[0].planSwitches, 1);
    ov.commit(0, ModelId::ResNet50, mib(256),
              ov.planTimes(0, 100, 40, 60));
    EXPECT_EQ(ov.devices()[0].planSwitches, 2);
}

TEST(Cluster, TwoDevicesRunSimultaneousArrivalsInParallel)
{
    FlashMem fm(DeviceProfile::onePlus12());
    auto queue = chainWorkload({ModelId::ResNet50, ModelId::ResNet50},
                               /*gap=*/0);

    EventScheduler single(fm);
    auto serial = single.run(queue, FifoPolicy{});

    SchedulerConfig cfg;
    cfg.cluster.deviceCount = 2;
    EventScheduler sched(fm, cfg);
    auto out = sched.run(queue, FifoPolicy{});
    ASSERT_EQ(out.runs.size(), 2u);
    // Both dispatch at t=0 on distinct devices; the queue-behind-the-
    // first latency of the serialized device disappears.
    EXPECT_EQ(out.runs[0].start, 0);
    EXPECT_EQ(out.runs[1].start, 0);
    EXPECT_EQ(out.runs[0].device, 0);
    EXPECT_EQ(out.runs[1].device, 1);
    EXPECT_LT(out.makespan, serial.makespan);
    EXPECT_EQ(out.makespan, serial.runs[0].end);
    ASSERT_EQ(out.devices.size(), 2u);
    EXPECT_EQ(out.devices[0].dispatched, 1u);
    EXPECT_EQ(out.devices[1].dispatched, 1u);
}

TEST(Cluster, LeastLoadedTieBreaksDeterministically)
{
    // Equal-load (idle) devices: the lowest id wins, and the whole
    // schedule is reproducible run to run.
    FlashMem fm(DeviceProfile::onePlus12());
    SchedulerConfig cfg;
    cfg.cluster.deviceCount = 3;
    auto queue = interleavedWorkload(
        {ModelId::ResNet50, ModelId::DepthAnythingS}, 3,
        milliseconds(5), 7);

    EventScheduler sched(fm, cfg);
    auto a = sched.run(queue, FifoPolicy{});
    auto b = sched.run(queue, FifoPolicy{});
    ASSERT_EQ(a.runs.size(), queue.size());
    EXPECT_EQ(a.runs[0].device, 0); // first pick on the lowest id
    ASSERT_EQ(a.runs.size(), b.runs.size());
    for (std::size_t i = 0; i < a.runs.size(); ++i) {
        EXPECT_EQ(a.runs[i].device, b.runs[i].device);
        EXPECT_EQ(a.runs[i].start, b.runs[i].start);
        EXPECT_EQ(a.runs[i].end, b.runs[i].end);
    }
}

TEST(Cluster, RoundRobinCyclesDevices)
{
    FlashMem fm(DeviceProfile::onePlus12());
    SchedulerConfig cfg;
    cfg.cluster.deviceCount = 2;
    cfg.cluster.placement = PlacementKind::RoundRobin;
    EventScheduler sched(fm, cfg);
    // Spread arrivals so every dispatch sees both devices idle: the
    // cursor, not load, must cycle the placement.
    auto queue = chainWorkload({ModelId::ResNet50, ModelId::ResNet50,
                                ModelId::ResNet50, ModelId::ResNet50},
                               seconds(2));
    auto out = sched.run(queue, FifoPolicy{});
    ASSERT_EQ(out.runs.size(), 4u);
    EXPECT_EQ(out.runs[0].device, 0);
    EXPECT_EQ(out.runs[1].device, 1);
    EXPECT_EQ(out.runs[2].device, 0);
    EXPECT_EQ(out.runs[3].device, 1);
}

TEST(Cluster, CapacityAffinityAvoidsPlanSwitches)
{
    // One model, two requests far apart. Least-loaded sends the
    // second request to the idle-longest device 1 (a second plan
    // residency); capacity affinity routes it back to device 0,
    // which already holds the model's plan at the target budget.
    FlashMem fm(DeviceProfile::onePlus12());
    std::vector<ModelRequest> queue{
        {ModelId::ResNet50, 0, 0, 0},
        {ModelId::ResNet50, seconds(2), 0, 0},
    };

    SchedulerConfig ll_cfg;
    ll_cfg.cluster.deviceCount = 2;
    EventScheduler ll_sched(fm, ll_cfg);
    auto ll = ll_sched.run(queue, FifoPolicy{});
    ASSERT_EQ(ll.runs.size(), 2u);
    EXPECT_EQ(ll.runs[0].device, 0);
    EXPECT_EQ(ll.runs[1].device, 1);
    EXPECT_EQ(ll.devices[0].planSwitches + ll.devices[1].planSwitches,
              2);

    SchedulerConfig af_cfg;
    af_cfg.cluster.deviceCount = 2;
    af_cfg.cluster.placement = PlacementKind::CapacityAffinity;
    EventScheduler af_sched(fm, af_cfg);
    auto af = af_sched.run(queue, FifoPolicy{});
    ASSERT_EQ(af.runs.size(), 2u);
    EXPECT_EQ(af.runs[0].device, 0);
    EXPECT_EQ(af.runs[1].device, 0); // resident plan, no re-plan
    EXPECT_EQ(af.devices[0].planSwitches, 1);
    EXPECT_EQ(af.devices[1].planSwitches, 0);
    // Identical timelines otherwise: the model was already planned.
    EXPECT_EQ(af.makespan, ll.makespan);
}

TEST(Cluster, OverlapImprovesBackToBackMakespan)
{
    // Back-to-back LLM requests on one device: with cross-request
    // overlap each request's streamed preload runs on the DMA queue
    // while the previous request computes, so every run after the
    // first hides its full init phase.
    FlashMem fm(DeviceProfile::onePlus12());
    auto queue = chainWorkload(
        {ModelId::GPTNeoS, ModelId::GPTNeoS, ModelId::GPTNeoS},
        /*gap=*/0);

    EventScheduler serial_sched(fm);
    auto serial = serial_sched.run(queue, FifoPolicy{});

    SchedulerConfig cfg;
    cfg.cluster.overlapInitWithExec = true;
    EventScheduler sched(fm, cfg);
    auto out = sched.run(queue, FifoPolicy{});
    ASSERT_EQ(out.runs.size(), 3u);

    SimTime service = serial.runs[0].integratedLatency();
    SimTime init = out.runs[0].initLatency();
    SimTime exec = out.runs[0].execLatency();
    ASSERT_GT(init, 0);
    // First run is identical to the serialized one.
    EXPECT_EQ(out.runs[0].start, 0);
    EXPECT_EQ(out.runs[0].end, service);
    // The two-resource recurrence: each run's preload starts when the
    // DMA queue frees and a pipeline slot opens (the run before the
    // previous one completed), and its compute phase queues behind
    // the previous run's end.
    for (std::size_t i = 1; i < out.runs.size(); ++i) {
        SimTime slot_free =
            i >= 2 ? out.runs[i - 2].end : SimTime{0};
        EXPECT_EQ(out.runs[i].start,
                  std::max(out.runs[i - 1].initDone, slot_free));
        EXPECT_EQ(out.runs[i].initDone, out.runs[i].start + init);
        EXPECT_EQ(out.runs[i].end,
                  std::max(out.runs[i].initDone,
                           out.runs[i - 1].end) +
                      exec);
    }
    // Every run after the first hides (part of) its init behind the
    // predecessor's compute: the pipelined makespan beats serial,
    // and equals the recurrence unrolled from the solo profile.
    EXPECT_EQ(serial.makespan, 3 * service);
    SimTime e0 = service;
    SimTime e1 = std::max(2 * init, e0) + exec;
    SimTime s2 = std::max(2 * init, e0);
    SimTime e2 = std::max(s2 + init, e1) + exec;
    EXPECT_EQ(out.makespan, e2);
    EXPECT_LT(out.makespan, serial.makespan);

    // DMA-busy accounting reports the overlapped init work directly.
    ASSERT_EQ(out.devices.size(), 1u);
    EXPECT_EQ(out.devices[0].dmaBusyTime, 3 * init);
    EXPECT_GT(out.devices[0].dmaUtilization, 0.0);
    EXPECT_LE(out.devices[0].computeUtilization, 1.0);
}

TEST(Cluster, PerDeviceUtilizationAccountsAllDispatchedWork)
{
    FlashMem fm(DeviceProfile::onePlus12());
    SchedulerConfig cfg;
    cfg.cluster.deviceCount = 2;
    EventScheduler sched(fm, cfg);
    auto queue = interleavedWorkload(
        {ModelId::ResNet50, ModelId::DepthAnythingS}, 2,
        milliseconds(10), 5);
    auto out = sched.run(queue, FifoPolicy{});
    ASSERT_EQ(out.devices.size(), 2u);

    std::size_t dispatched = 0;
    SimTime busy = 0;
    for (const auto &d : out.devices) {
        dispatched += d.dispatched;
        busy += d.computeBusyTime + d.dmaBusyTime;
        EXPECT_GE(d.computeUtilization, 0.0);
        EXPECT_LE(d.computeUtilization, 1.0);
        EXPECT_GE(d.dmaUtilization, 0.0);
        EXPECT_LE(d.dmaUtilization, 1.0);
        EXPECT_GT(d.peakMemory, 0u);
    }
    EXPECT_EQ(dispatched, out.runs.size());
    // Serialized devices: per-run init + exec phases partition each
    // run, so summed busy time equals summed integrated latency.
    SimTime integrated = 0;
    for (const auto &r : out.runs)
        integrated += r.integratedLatency();
    EXPECT_EQ(busy, integrated);
}

TEST(Cluster, PreloadPathShardsButNeverOverlaps)
{
    // The preloading baselines support multi-device sharding, but
    // cross-request overlap is forced off: their init is not a
    // streamed DMA-queue phase — re-initializing per request on the
    // serialized device is exactly the overhead the paper targets.
    auto dev = DeviceProfile::onePlus12();
    auto queue = chainWorkload({ModelId::ResNet50, ModelId::ResNet50},
                               /*gap=*/0);
    ClusterConfig cluster;
    cluster.deviceCount = 2;
    cluster.overlapInitWithExec = true; // ignored by the baselines
    auto out = EventScheduler::runPreload(
        baselines::FrameworkId::MNN, dev, queue, FifoPolicy{},
        Precision::FP16, cluster);
    ASSERT_EQ(out.runs.size(), 2u);
    EXPECT_EQ(out.runs[0].device, 0);
    EXPECT_EQ(out.runs[1].device, 1);
    EXPECT_EQ(out.runs[0].start, 0);
    EXPECT_EQ(out.runs[1].start, 0);
    ASSERT_EQ(out.devices.size(), 2u);
    EXPECT_EQ(out.devices[0].dispatched, 1u);
    EXPECT_EQ(out.devices[1].dispatched, 1u);
}

// ------------------------------------------------------- FIFO thin shim

TEST(FifoScheduler, ThinWrapperMatchesEventScheduler)
{
    FlashMem fm(DeviceProfile::onePlus12());
    auto queue = chainWorkload({ModelId::ResNet50,
                                ModelId::DepthAnythingS},
                               milliseconds(5));
    auto wrapped = FifoScheduler::runFlashMem(fm, queue);
    EventScheduler sched(fm);
    auto direct = sched.run(queue, FifoPolicy{});
    ASSERT_EQ(wrapped.runs.size(), direct.runs.size());
    EXPECT_EQ(wrapped.makespan, direct.makespan);
    EXPECT_EQ(wrapped.peakMemory, direct.peakMemory);
    for (std::size_t i = 0; i < wrapped.runs.size(); ++i) {
        EXPECT_EQ(wrapped.runs[i].start, direct.runs[i].start);
        EXPECT_EQ(wrapped.runs[i].end, direct.runs[i].end);
    }
}

} // namespace
} // namespace flashmem::multidnn
