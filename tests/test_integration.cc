/**
 * @file
 * Cross-module integration tests: full compile->execute pipelines
 * across precisions and devices, plan persistence through the whole
 * stack, FIFO arrival semantics, energy/latency consistency, and
 * end-to-end determinism.
 */

#include <gtest/gtest.h>

#include "baselines/preload_framework.hh"
#include "core/flashmem.hh"
#include "models/model_zoo.hh"
#include "multidnn/fifo_scheduler.hh"

namespace flashmem {
namespace {

using core::FlashMem;
using gpusim::DeviceProfile;
using gpusim::GpuSimulator;
using models::ModelId;

TEST(Integration, Fp32DoublesTrafficAndSlowsRuns)
{
    auto dev = DeviceProfile::onePlus12();
    FlashMem fm(dev);
    auto g16 = models::buildModel(ModelId::ViT, Precision::FP16);
    auto g32 = models::buildModel(ModelId::ViT, Precision::FP32);
    auto r16 = fm.runOnce(g16);
    auto r32 = fm.runOnce(g32);
    EXPECT_EQ(g32.totalWeightBytes(), 2 * g16.totalWeightBytes());
    EXPECT_GT(r32.integratedLatency(), r16.integratedLatency());
    // Peak memory is NOT asserted: fp32's slower kernels gain load
    // capacity, letting the planner stream more and sometimes hold
    // less in flight despite the doubled weights.
}

TEST(Integration, PlanSurvivesSerializationThroughRuntime)
{
    auto dev = DeviceProfile::onePlus12();
    FlashMem fm(dev);
    auto compiled = fm.compile(models::buildModel(ModelId::GPTNeoS));

    // Round-trip the plan as a deployment artifact and re-execute.
    auto restored =
        core::OverlapPlan::deserialize(compiled.plan.serialize());
    GpuSimulator s1(dev), s2(dev);
    auto r1 = core::StreamingRuntime(s1, compiled.fusedGraph,
                                     compiled.plan)
                  .run();
    auto r2 = core::StreamingRuntime(s2, compiled.fusedGraph, restored)
                  .run();
    EXPECT_EQ(r1.integratedLatency(), r2.integratedLatency());
    EXPECT_EQ(r1.peakMemory, r2.peakMemory);
}

TEST(Integration, SlowerDevicesRunSlower)
{
    auto g = models::buildModel(ModelId::ViT);
    SimTime op12 =
        FlashMem(DeviceProfile::onePlus12()).runOnce(g)
            .integratedLatency();
    SimTime p8 =
        FlashMem(DeviceProfile::pixel8()).runOnce(g)
            .integratedLatency();
    SimTime mi6 =
        FlashMem(DeviceProfile::xiaomiMi6()).runOnce(g)
            .integratedLatency();
    EXPECT_LT(op12, p8);
    EXPECT_LT(p8, mi6);
}

TEST(Integration, FifoRespectsArrivalGaps)
{
    using namespace multidnn;
    FlashMem fm(DeviceProfile::onePlus12());
    // Huge gap: second request must start at its arrival, not earlier.
    std::vector<ModelRequest> queue = {
        {ModelId::ResNet50, 0},
        {ModelId::ResNet50, seconds(5.0)},
    };
    auto out = FifoScheduler::runFlashMem(fm, queue);
    ASSERT_EQ(out.runs.size(), 2u);
    EXPECT_EQ(out.runs[1].start, seconds(5.0));
    // Identical model + idle device: identical latency both times.
    EXPECT_EQ(out.runs[0].integratedLatency(),
              out.runs[1].integratedLatency());
}

TEST(Integration, EnergyConsistentWithPowerAndTime)
{
    auto dev = DeviceProfile::onePlus12();
    FlashMem fm(dev);
    auto compiled = fm.compile(models::buildModel(ModelId::ViT));
    GpuSimulator sim(dev);
    auto r = fm.execute(sim, compiled);
    double energy = sim.energyJoules(r.end);
    double power = sim.averagePowerW(r.end);
    EXPECT_NEAR(energy, power * toSeconds(r.end), 1e-6);
    EXPECT_GE(power, dev.basePowerW);
}

TEST(Integration, CompileIsDeviceSpecific)
{
    // Capacities depend on the device, so plans differ across phones.
    auto g = models::buildModel(ModelId::GPTNeoS);
    auto fast = FlashMem(DeviceProfile::onePlus12()).compile(g);
    auto slow = FlashMem(DeviceProfile::xiaomiMi6()).compile(g);
    // The slower GPU has less compute slack to hide loads, so it must
    // preload at least as much.
    EXPECT_GE(slow.plan.preloadBytes(slow.fusedGraph),
              fast.plan.preloadBytes(fast.fusedGraph));
}

TEST(Integration, EndToEndDeterminism)
{
    auto run_once = [] {
        FlashMem fm(DeviceProfile::onePlus12());
        auto g = models::buildModel(ModelId::DepthAnythingS);
        auto compiled = fm.compile(g);
        GpuSimulator sim(fm.device());
        auto r = fm.execute(sim, compiled);
        return std::make_tuple(r.integratedLatency(), r.peakMemory,
                               compiled.plan.serialize());
    };
    auto a = run_once();
    auto b = run_once();
    EXPECT_EQ(a, b);
}

TEST(Integration, WarmStartCrossoverVsSmartMem)
{
    // Paper Section 5.2: SmartMem's inference-only time beats
    // FlashMem's integrated time after 3-12 consecutive warm runs of
    // the same model. Verify the crossover exists in that band for a
    // model SmartMem supports.
    auto dev = DeviceProfile::onePlus12();
    auto g = models::buildModel(ModelId::ViT);

    FlashMem fm(dev);
    auto flash = fm.runOnce(g);
    baselines::PreloadFramework smem(baselines::FrameworkId::SmartMem,
                                     dev);
    GpuSimulator sim(dev);
    auto cold = smem.run(sim, g);
    SimTime warm = smem.warmExecLatency(g);

    // One cold start is slower than FlashMem...
    EXPECT_GT(cold.integratedLatency(), flash.integratedLatency());
    // ...but repeated warm inference amortizes it within ~50 runs.
    double crossover =
        static_cast<double>(cold.integratedLatency() -
                            flash.integratedLatency()) /
        static_cast<double>(std::max<SimTime>(
            flash.integratedLatency() - warm, 1));
    EXPECT_GT(crossover, 1.0);
    EXPECT_LT(crossover, 60.0);
}

TEST(Integration, AlwaysValidPlansAcrossHyperparameterGrid)
{
    // Property sweep: every hyper-parameter combination must yield a
    // valid, runnable plan (the C4 fallback guarantee).
    auto g = models::buildModel(ModelId::GPTNeoS);
    auto dev = DeviceProfile::onePlus12();
    for (Bytes chunk : {kib(256), mib(1), mib(4)}) {
        for (Bytes mpeak : {mib(8), mib(500)}) {
            for (int window : {8, 48}) {
                core::FlashMemOptions opt;
                opt.opg.chunkBytes = chunk;
                opt.opg.mPeak = mpeak;
                opt.opg.windowLayers = window;
                opt.opg.maxLoadDistance = window / 2;
                FlashMem fm(dev, opt);
                auto compiled = fm.compile(g);
                EXPECT_TRUE(compiled.plan.validate(compiled.fusedGraph,
                                                   false))
                    << "chunk=" << chunk << " mpeak=" << mpeak
                    << " window=" << window;
                GpuSimulator sim(dev);
                auto r = fm.execute(sim, compiled);
                EXPECT_GT(r.integratedLatency(), 0);
                EXPECT_EQ(sim.memory().used(), 0u);
            }
        }
    }
}

} // namespace
} // namespace flashmem
