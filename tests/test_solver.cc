/**
 * @file
 * Tests for the CP-SAT-style solver: propagation, implications,
 * optimality on knapsack-like problems, status reporting, limits, the
 * trail/watch-list machinery behind the fast engine, and randomized
 * equivalence checks against brute-force enumeration (both engines).
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>

#include "common/rng.hh"
#include "solver/model.hh"
#include "solver/solver.hh"
#include "solver/trail.hh"

namespace flashmem::solver {
namespace {

TEST(CpModel, VariableBookkeeping)
{
    CpModel m;
    auto x = m.newIntVar(0, 10, "x");
    auto y = m.newIntVar(-5, 5, "y");
    EXPECT_EQ(m.varCount(), 2u);
    EXPECT_EQ(m.lowerBound(x), 0);
    EXPECT_EQ(m.upperBound(y), 5);
    EXPECT_EQ(m.varName(x), "x");
}

TEST(CpModel, RejectsEmptyDomain)
{
    CpModel m;
    EXPECT_DEATH(m.newIntVar(3, 2, "bad"), "empty initial domain");
}

TEST(CpSolver, SatisfiesSimpleEquality)
{
    CpModel m;
    auto x = m.newIntVar(0, 10);
    auto y = m.newIntVar(0, 10);
    m.addEquality({{x, 1}, {y, 1}}, 7);
    m.addLessOrEqual({{x, 1}}, 3);

    auto r = CpSolver().solve(m);
    ASSERT_TRUE(r.feasible());
    EXPECT_EQ(r.value(x) + r.value(y), 7);
    EXPECT_LE(r.value(x), 3);
}

TEST(CpSolver, DetectsInfeasibility)
{
    CpModel m;
    auto x = m.newIntVar(0, 5);
    m.addGreaterOrEqual({{x, 1}}, 3);
    m.addLessOrEqual({{x, 1}}, 2);
    auto r = CpSolver().solve(m);
    EXPECT_EQ(r.status, SolveStatus::Infeasible);
    EXPECT_FALSE(r.feasible());
}

TEST(CpSolver, MinimizesLinearObjective)
{
    CpModel m;
    auto x = m.newIntVar(0, 10);
    auto y = m.newIntVar(0, 10);
    m.addGreaterOrEqual({{x, 1}, {y, 1}}, 6);
    m.minimize({{x, 3}, {y, 1}});

    auto r = CpSolver().solve(m);
    ASSERT_EQ(r.status, SolveStatus::Optimal);
    // Cheapest way to reach sum >= 6 is all-y.
    EXPECT_EQ(r.value(x), 0);
    EXPECT_EQ(r.value(y), 6);
    EXPECT_EQ(r.objective, 6);
}

TEST(CpSolver, SolvesKnapsackOptimally)
{
    // Maximize 6a + 5b + 4c s.t. 3a + 2b + 2c <= 6, binary vars
    // (as minimization of the negated objective). Optimum: b=c=1,a=1?
    // 3+2+2=7 > 6, so best is a=1,b=1 (w=5,v=11) vs b=1,c=1 (w=4,v=9)
    // vs a=1,c=1 (w=5,v=10) -> 11.
    CpModel m;
    auto a = m.newIntVar(0, 1);
    auto b = m.newIntVar(0, 1);
    auto c = m.newIntVar(0, 1);
    m.addLessOrEqual({{a, 3}, {b, 2}, {c, 2}}, 6);
    m.minimize({{a, -6}, {b, -5}, {c, -4}});

    auto r = CpSolver().solve(m);
    ASSERT_EQ(r.status, SolveStatus::Optimal);
    EXPECT_EQ(r.objective, -11);
    EXPECT_EQ(r.value(a), 1);
    EXPECT_EQ(r.value(b), 1);
    EXPECT_EQ(r.value(c), 0);
}

TEST(CpSolver, ImplicationForcesBound)
{
    // (x >= 1) => (z <= 3); force x = 2, minimize -z: z must stop at 3.
    CpModel m;
    auto x = m.newIntVar(2, 2);
    auto z = m.newIntVar(0, 10);
    m.addImplicationGeLe(x, 1, z, 3);
    m.minimize({{z, -1}});
    auto r = CpSolver().solve(m);
    ASSERT_EQ(r.status, SolveStatus::Optimal);
    EXPECT_EQ(r.value(z), 3);
}

TEST(CpSolver, ImplicationContrapositive)
{
    // (x >= 1) => (z <= 3); force z = 5, maximize x: x must stay 0.
    CpModel m;
    auto x = m.newIntVar(0, 4);
    auto z = m.newIntVar(5, 5);
    m.addImplicationGeLe(x, 1, z, 3);
    m.minimize({{x, -1}});
    auto r = CpSolver().solve(m);
    ASSERT_EQ(r.status, SolveStatus::Optimal);
    EXPECT_EQ(r.value(x), 0);
}

TEST(CpSolver, ImplicationInactiveWhenBelowThreshold)
{
    CpModel m;
    auto x = m.newIntVar(0, 0);
    auto z = m.newIntVar(0, 10);
    m.addImplicationGeLe(x, 1, z, 3);
    m.minimize({{z, -1}});
    auto r = CpSolver().solve(m);
    ASSERT_EQ(r.status, SolveStatus::Optimal);
    EXPECT_EQ(r.value(z), 10); // implication never fires
}

TEST(CpSolver, NegativeCoefficientsPropagate)
{
    // x - y == 2 with x in [0,10], y in [0,10]; minimize x.
    CpModel m;
    auto x = m.newIntVar(0, 10);
    auto y = m.newIntVar(0, 10);
    m.addEquality({{x, 1}, {y, -1}}, 2);
    m.minimize({{x, 1}});
    auto r = CpSolver().solve(m);
    ASSERT_EQ(r.status, SolveStatus::Optimal);
    EXPECT_EQ(r.value(x), 2);
    EXPECT_EQ(r.value(y), 0);
}

TEST(CpSolver, WarmStartHintAccepted)
{
    CpModel m;
    auto x = m.newIntVar(0, 100);
    auto y = m.newIntVar(0, 100);
    m.addGreaterOrEqual({{x, 1}, {y, 2}}, 50);
    m.minimize({{x, 1}, {y, 1}});

    std::vector<std::int64_t> hint = {50, 0};
    auto r = CpSolver().solve(m, &hint);
    ASSERT_TRUE(r.feasible());
    // Optimal is y=25, x=0 (objective 25); the hint (50) must not win.
    EXPECT_EQ(r.objective, 25);
}

TEST(CpSolver, InvalidHintIgnored)
{
    CpModel m;
    auto x = m.newIntVar(0, 10);
    m.addLessOrEqual({{x, 1}}, 5);
    m.minimize({{x, -1}});
    std::vector<std::int64_t> bad_hint = {9}; // violates x <= 5
    auto r = CpSolver().solve(m, &bad_hint);
    ASSERT_EQ(r.status, SolveStatus::Optimal);
    EXPECT_EQ(r.value(x), 5);
}

TEST(CpSolver, DecisionLimitYieldsFeasibleOrUnknown)
{
    SolverParams params;
    params.maxDecisions = 3;
    CpModel m;
    std::vector<VarId> vars;
    for (int i = 0; i < 30; ++i)
        vars.push_back(m.newIntVar(0, 9));
    std::vector<LinearTerm> sum;
    for (auto v : vars)
        sum.push_back({v, 1});
    m.addGreaterOrEqual(sum, 100);
    m.minimize(sum);

    auto r = CpSolver(params).solve(m);
    EXPECT_TRUE(r.status == SolveStatus::Feasible ||
                r.status == SolveStatus::Unknown);
}

TEST(CpSolver, TimeLimitRespected)
{
    SolverParams params;
    params.timeLimitSeconds = 0.05;
    // Hard 0/1 instance: subset-sum-like with no early exit.
    CpModel m;
    Rng rng(3);
    std::vector<LinearTerm> sum;
    for (int i = 0; i < 48; ++i) {
        auto v = m.newIntVar(0, 1);
        sum.push_back({v, rng.uniformInt(7, 97)});
    }
    m.addEquality(sum, 1009);
    std::vector<LinearTerm> obj = sum;
    m.minimize(obj);

    // FMLINT(allow:no-wall-clock) speedup measurement harness; asserted bound is a ratio, not plan content
    auto t0 = std::chrono::steady_clock::now();
    auto r = CpSolver(params).solve(m);
    double elapsed =
        // FMLINT(allow:no-wall-clock) speedup measurement harness; asserted bound is a ratio, not plan content
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();
    EXPECT_LT(elapsed, 1.0); // well within a second despite hardness
    (void)r;
}

// Randomized equivalence vs brute-force enumeration: statuses agree and
// objectives match on every seed.
class SolverVsBruteForce : public ::testing::TestWithParam<int>
{
};

TEST_P(SolverVsBruteForce, AgreesOnRandomInstances)
{
    Rng rng(1000 + GetParam());
    const int nvars = static_cast<int>(rng.uniformInt(2, 5));
    const std::int64_t dom = rng.uniformInt(2, 4);

    CpModel m;
    for (int i = 0; i < nvars; ++i)
        m.newIntVar(0, dom);

    const int ncons = static_cast<int>(rng.uniformInt(1, 4));
    for (int c = 0; c < ncons; ++c) {
        std::vector<LinearTerm> terms;
        for (int i = 0; i < nvars; ++i) {
            auto coef = rng.uniformInt(-3, 3);
            if (coef != 0)
                terms.push_back({i, coef});
        }
        if (terms.empty())
            terms.push_back({0, 1});
        auto lo = rng.uniformInt(-6, 2);
        auto hi = lo + rng.uniformInt(0, 8);
        m.addLinear(terms, lo, hi);
    }
    if (rng.uniform() < 0.5 && nvars >= 2) {
        m.addImplicationGeLe(0, rng.uniformInt(1, dom), 1,
                             rng.uniformInt(0, dom - 1));
    }
    std::vector<LinearTerm> obj;
    for (int i = 0; i < nvars; ++i)
        obj.push_back({i, rng.uniformInt(-4, 4)});
    m.minimize(obj);

    // Brute force.
    std::vector<std::int64_t> assign(nvars, 0);
    bool bf_feasible = false;
    std::int64_t bf_best = 0;
    auto feasible = [&](const std::vector<std::int64_t> &vals) {
        for (const auto &c : m.constraints()) {
            std::int64_t s = 0;
            for (const auto &t : c.terms)
                s += t.coef * vals[t.var];
            if (s < c.lo || s > c.hi)
                return false;
        }
        for (const auto &imp : m.implications()) {
            if (vals[imp.x] >= imp.xThreshold &&
                vals[imp.y] > imp.yBound)
                return false;
        }
        return true;
    };
    std::uint64_t total = 1;
    for (int i = 0; i < nvars; ++i)
        total *= (dom + 1);
    for (std::uint64_t code = 0; code < total; ++code) {
        std::uint64_t c = code;
        for (int i = 0; i < nvars; ++i) {
            assign[i] = static_cast<std::int64_t>(c % (dom + 1));
            c /= (dom + 1);
        }
        if (!feasible(assign))
            continue;
        std::int64_t o = 0;
        for (const auto &t : obj)
            o += t.coef * assign[t.var];
        if (!bf_feasible || o < bf_best) {
            bf_feasible = true;
            bf_best = o;
        }
    }

    // Both engines must agree with the enumerator and each other.
    for (auto engine : {SearchEngine::Trail, SearchEngine::Baseline}) {
        SolverParams params;
        params.engine = engine;
        auto r = CpSolver(params).solve(m);
        if (bf_feasible) {
            ASSERT_EQ(r.status, SolveStatus::Optimal)
                << "seed " << GetParam() << " engine "
                << searchEngineName(engine);
            EXPECT_EQ(r.objective, bf_best)
                << "seed " << GetParam() << " engine "
                << searchEngineName(engine);
        } else {
            EXPECT_EQ(r.status, SolveStatus::Infeasible)
                << "seed " << GetParam() << " engine "
                << searchEngineName(engine);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, SolverVsBruteForce,
                         ::testing::Range(0, 60));

TEST(CpSolver, StatusNames)
{
    EXPECT_STREQ(solveStatusName(SolveStatus::Optimal), "OPTIMAL");
    EXPECT_STREQ(solveStatusName(SolveStatus::Feasible), "FEASIBLE");
    EXPECT_STREQ(solveStatusName(SolveStatus::Infeasible), "INFEASIBLE");
    EXPECT_STREQ(solveStatusName(SolveStatus::Unknown), "UNKNOWN");
    EXPECT_STREQ(searchEngineName(SearchEngine::Trail), "trail");
    EXPECT_STREQ(searchEngineName(SearchEngine::Baseline), "baseline");
}

// ------------------------------------------------------------ DomainTrail

TEST(DomainTrail, TightenAndRewindRestoresExactly)
{
    DomainTrail dom;
    dom.init({0, -5, 10}, {9, 5, 20});

    auto root = dom.mark();
    dom.tightenLb(0, 3);
    dom.tightenUb(0, 7);
    dom.tightenUb(1, 0);
    EXPECT_EQ(dom.lb(0), 3);
    EXPECT_EQ(dom.ub(0), 7);
    EXPECT_EQ(dom.ub(1), 0);
    EXPECT_EQ(dom.depth(), 3u);

    auto inner = dom.mark();
    dom.tightenLb(2, 15);
    dom.tightenLb(0, 7); // fixes var 0
    EXPECT_TRUE(dom.fixed(0));

    dom.rewindTo(inner);
    EXPECT_EQ(dom.lb(0), 3);
    EXPECT_EQ(dom.lb(2), 10);
    EXPECT_EQ(dom.ub(1), 0); // outer changes survive inner rewind

    dom.rewindTo(root);
    EXPECT_EQ(dom.lb(0), 0);
    EXPECT_EQ(dom.ub(0), 9);
    EXPECT_EQ(dom.lb(1), -5);
    EXPECT_EQ(dom.ub(1), 5);
    EXPECT_EQ(dom.lb(2), 10);
    EXPECT_EQ(dom.ub(2), 20);
    EXPECT_EQ(dom.depth(), 0u);
}

TEST(DomainTrail, RewindObserverSeesEveryChange)
{
    DomainTrail dom;
    dom.init({0, 0}, {10, 10});
    auto mark = dom.mark();
    dom.tightenLb(0, 4);
    dom.tightenUb(1, 6);

    int undone = 0;
    dom.rewindTo(mark, [&](VarId v, bool isUpper, std::int64_t cur,
                           std::int64_t old) {
        ++undone;
        if (v == 0) {
            EXPECT_FALSE(isUpper);
            EXPECT_EQ(cur, 4);
            EXPECT_EQ(old, 0);
        } else {
            EXPECT_TRUE(isUpper);
            EXPECT_EQ(cur, 6);
            EXPECT_EQ(old, 10);
        }
    });
    EXPECT_EQ(undone, 2);
}

// Randomized regression: arbitrary interleavings of tightenings and
// nested rewinds always restore domains exactly (checked against shadow
// snapshot copies, the representation the seed solver used).
TEST(DomainTrail, RandomizedRewindMatchesSnapshots)
{
    Rng rng(99);
    for (int round = 0; round < 50; ++round) {
        const int nvars = static_cast<int>(rng.uniformInt(1, 12));
        std::vector<std::int64_t> lb(nvars), ub(nvars);
        for (int v = 0; v < nvars; ++v) {
            lb[v] = rng.uniformInt(-20, 10);
            ub[v] = lb[v] + rng.uniformInt(0, 30);
        }
        DomainTrail dom;
        dom.init(lb, ub);

        // Stack of (mark, lb snapshot, ub snapshot).
        struct Snap
        {
            std::size_t mark;
            std::vector<std::int64_t> lb, ub;
        };
        std::vector<Snap> snaps{{dom.mark(), lb, ub}};

        for (int step = 0; step < 60; ++step) {
            double roll = rng.uniform();
            if (roll < 0.5) {
                // Tighten a random var if possible.
                VarId v = static_cast<VarId>(
                    rng.uniformInt(0, nvars - 1));
                if (dom.domainSize(v) <= 0)
                    continue;
                if (rng.uniform() < 0.5)
                    dom.tightenLb(
                        v, dom.lb(v) +
                               rng.uniformInt(1, dom.domainSize(v)));
                else
                    dom.tightenUb(
                        v, dom.ub(v) -
                               rng.uniformInt(1, dom.domainSize(v)));
            } else if (roll < 0.75) {
                snaps.push_back({dom.mark(), dom.lbs(), dom.ubs()});
            } else if (snaps.size() > 1) {
                dom.rewindTo(snaps.back().mark);
                EXPECT_EQ(dom.lbs(), snaps.back().lb);
                EXPECT_EQ(dom.ubs(), snaps.back().ub);
                snaps.pop_back();
            }
        }
        // Unwind everything: must land exactly on the root domains.
        dom.rewindTo(snaps.front().mark);
        EXPECT_EQ(dom.lbs(), lb);
        EXPECT_EQ(dom.ubs(), ub);
    }
}

TEST(DomainTrail, SumRestoreEntriesRewindWithBounds)
{
    DomainTrail dom;
    dom.init({0, 0}, {10, 10});
    std::vector<std::int64_t> sums = {100, 200};
    dom.trackSums(&sums);

    auto root = dom.mark();
    dom.tightenLb(0, 4);
    dom.addToSum(0, 4);   // smin-style delta for the lb raise
    dom.addToSum(1, -7);
    dom.tightenUb(1, 6);
    EXPECT_EQ(sums[0], 104);
    EXPECT_EQ(sums[1], 193);

    auto inner = dom.mark();
    dom.addToSum(0, 10);
    dom.tightenLb(1, 2);
    EXPECT_EQ(sums[0], 114);

    dom.rewindTo(inner);
    EXPECT_EQ(sums[0], 104); // inner sum delta undone
    EXPECT_EQ(sums[1], 193); // outer delta survives
    EXPECT_EQ(dom.lb(1), 0);

    int bound_undos = 0;
    dom.rewindTo(root, [&](VarId, bool, std::int64_t, std::int64_t) {
        ++bound_undos; // sum entries restore silently
    });
    EXPECT_EQ(bound_undos, 2);
    EXPECT_EQ(sums[0], 100);
    EXPECT_EQ(sums[1], 200);
    EXPECT_EQ(dom.lb(0), 0);
    EXPECT_EQ(dom.ub(1), 10);
}

// -------------------------------------------------------------- Restarts

/** Budget-truncated OPG-ish model for restart tests. */
CpModel
restartModel(int weights, int layers, int tw, int cap)
{
    CpModel m;
    for (int w = 0; w < weights; ++w) {
        std::vector<LinearTerm> row;
        for (int l = 0; l < layers; ++l)
            row.push_back({m.newIntVar(0, tw), 1});
        m.addEquality(row, tw);
    }
    std::vector<LinearTerm> obj;
    for (int w = 0; w < weights; ++w) {
        std::vector<LinearTerm> col;
        for (int l = 0; l < layers; ++l) {
            VarId v = w * layers + l;
            col.push_back({v, 1});
            obj.push_back({v, layers - l});
        }
    }
    for (int l = 0; l < layers; ++l) {
        std::vector<LinearTerm> col;
        for (int w = 0; w < weights; ++w)
            col.push_back({w * layers + l, 1});
        m.addLessOrEqual(col, cap);
    }
    m.minimize(obj);
    return m;
}

TEST(CpSolver, RestartsAreDeterministic)
{
    auto m = restartModel(18, 7, 4, 12);
    SolverParams params;
    params.maxDecisions = 30000;
    params.restartConflictBase = 64;
    auto r1 = CpSolver(params).solve(m);
    auto r2 = CpSolver(params).solve(m);
    EXPECT_GT(r1.restarts, 0u); // the schedule actually fired
    EXPECT_EQ(r1.status, r2.status);
    EXPECT_EQ(r1.objective, r2.objective);
    EXPECT_EQ(r1.decisions, r2.decisions);
    EXPECT_EQ(r1.restarts, r2.restarts);
    EXPECT_EQ(r1.values, r2.values);
}

TEST(CpSolver, RestartsKeepIncumbentQualityUnderBudget)
{
    auto m = restartModel(18, 7, 4, 12);
    // A deliberately poor but feasible hint: each weight dumps all its
    // chunks on one early layer (3 weights per layer x 4 chunks fills
    // the capacity of layers 0..5 exactly).
    std::vector<std::int64_t> hint(m.varCount(), 0);
    for (int w = 0; w < 18; ++w)
        hint[static_cast<std::size_t>(w) * 7 + (w % 6)] = 4;
    ASSERT_TRUE(m.satisfiedBy(hint));
    std::int64_t hint_obj = 0;
    for (const auto &t : m.objective())
        hint_obj += t.coef * hint[t.var];

    SolverParams params;
    params.maxDecisions = 30000;
    params.restartConflictBase = 64;
    auto r = CpSolver(params).solve(m, &hint);
    ASSERT_TRUE(r.feasible());
    // Solution phase saving: restarted searches never lose the
    // incumbent, so the anytime bound holds.
    EXPECT_LE(r.objective, hint_obj);
}

CpModel windowModel(int weights, int layers, int tw, int cap);

TEST(CpSolver, RestartsPreserveOptimalityProofs)
{
    auto m = windowModel(6, 4, 2, 4);
    SolverParams plain;
    SolverParams restarting;
    restarting.restartConflictBase = 32;
    auto r_plain = CpSolver(plain).solve(m);
    auto r_restart = CpSolver(restarting).solve(m);
    ASSERT_EQ(r_plain.status, SolveStatus::Optimal);
    ASSERT_EQ(r_restart.status, SolveStatus::Optimal);
    EXPECT_EQ(r_plain.objective, r_restart.objective);
}

// ------------------------------------------------------------ Watch lists

TEST(CpModel, WatchListsCoverEveryOccurrence)
{
    CpModel m;
    auto a = m.newIntVar(0, 5);
    auto b = m.newIntVar(0, 5);
    auto c = m.newIntVar(0, 5);
    m.addLessOrEqual({{a, 1}, {b, 2}}, 7);        // constraint 0
    m.addGreaterOrEqual({{b, 1}, {c, -1}}, 0);    // constraint 1
    m.addImplicationGeLe(a, 1, c, 3);             // implication 0

    EXPECT_EQ(m.constraintsWatching(a),
              (std::vector<std::int32_t>{0}));
    EXPECT_EQ(m.constraintsWatching(b),
              (std::vector<std::int32_t>{0, 1}));
    EXPECT_EQ(m.constraintsWatching(c),
              (std::vector<std::int32_t>{1}));
    EXPECT_EQ(m.implicationsWatching(a),
              (std::vector<std::int32_t>{0}));
    EXPECT_TRUE(m.implicationsWatching(b).empty());
    EXPECT_EQ(m.implicationsWatching(c),
              (std::vector<std::int32_t>{0}));
}

TEST(CpModel, WatchListsMaintainedAcrossMutation)
{
    CpModel m;
    auto a = m.newIntVar(0, 5);
    m.addLessOrEqual({{a, 1}}, 4);
    EXPECT_EQ(m.constraintsWatching(a).size(), 1u);
    // Watch lists are maintained eagerly: constraints added after a
    // query show up too.
    m.addGreaterOrEqual({{a, 1}}, 1);
    EXPECT_EQ(m.constraintsWatching(a).size(), 2u);
}

// ------------------------------------------------------------ Fingerprint

TEST(CpModel, FingerprintStableAndSensitive)
{
    auto build = [](std::int64_t ub, std::int64_t hi,
                    std::int64_t coef) {
        CpModel m;
        auto x = m.newIntVar(0, ub);
        auto y = m.newIntVar(0, 10);
        m.addLessOrEqual({{x, 1}, {y, coef}}, hi);
        m.addImplicationGeLe(x, 2, y, 5);
        m.minimize({{x, 1}, {y, 3}});
        return m;
    };
    auto base = build(10, 12, 2).fingerprint();
    EXPECT_EQ(base, build(10, 12, 2).fingerprint()); // deterministic
    EXPECT_NE(base, build(11, 12, 2).fingerprint()); // domain change
    EXPECT_NE(base, build(10, 13, 2).fingerprint()); // rhs change
    EXPECT_NE(base, build(10, 12, 3).fingerprint()); // coef change

    CpModel no_obj;
    auto x = no_obj.newIntVar(0, 10);
    auto y = no_obj.newIntVar(0, 10);
    no_obj.addLessOrEqual({{x, 1}, {y, 2}}, 12);
    no_obj.addImplicationGeLe(x, 2, y, 5);
    EXPECT_NE(base, no_obj.fingerprint()); // objective participates
}

// ------------------------------------------------- Engine equivalence

/** A mid-size OPG-ish model both engines solve to optimality. */
CpModel
windowModel(int weights, int layers, int tw, int cap)
{
    CpModel m;
    std::vector<std::vector<VarId>> x(weights);
    for (int w = 0; w < weights; ++w) {
        std::vector<LinearTerm> row;
        for (int l = 0; l < layers; ++l) {
            x[w].push_back(m.newIntVar(0, tw));
            row.push_back({x[w][l], 1});
        }
        m.addEquality(row, tw);
    }
    for (int l = 0; l < layers; ++l) {
        std::vector<LinearTerm> col;
        for (int w = 0; w < weights; ++w)
            col.push_back({x[w][l], 1});
        m.addLessOrEqual(col, cap);
    }
    std::vector<LinearTerm> obj;
    for (int w = 0; w < weights; ++w) {
        for (int l = 0; l < layers; ++l)
            obj.push_back({x[w][l], layers - l});
    }
    m.minimize(obj);
    return m;
}

TEST(CpSolver, EnginesAgreeOnWindowModel)
{
    auto m = windowModel(6, 4, 2, 4);
    SolverParams trail_params;
    trail_params.engine = SearchEngine::Trail;
    SolverParams base_params;
    base_params.engine = SearchEngine::Baseline;
    auto rt = CpSolver(trail_params).solve(m);
    auto rb = CpSolver(base_params).solve(m);
    ASSERT_EQ(rt.status, SolveStatus::Optimal);
    ASSERT_EQ(rb.status, SolveStatus::Optimal);
    EXPECT_EQ(rt.objective, rb.objective);
}

TEST(CpSolver, TrailEngineSolvesDeterministically)
{
    auto m = windowModel(8, 5, 3, 6);
    SolverParams params;
    params.maxDecisions = 50000;
    auto r1 = CpSolver(params).solve(m);
    auto r2 = CpSolver(params).solve(m);
    EXPECT_EQ(r1.status, r2.status);
    EXPECT_EQ(r1.objective, r2.objective);
    EXPECT_EQ(r1.decisions, r2.decisions);
    EXPECT_EQ(r1.values, r2.values);
}

TEST(CpSolver, ScalesToOpgWindowSizedProblems)
{
    // A problem shaped like one LC-OPG rolling window: ~30 weights x 8
    // candidate layers with completeness + capacity constraints.
    CpModel m;
    const int weights = 30, layers = 8;
    std::vector<std::vector<VarId>> x(weights);
    for (int w = 0; w < weights; ++w) {
        for (int l = 0; l < layers; ++l)
            x[w].push_back(m.newIntVar(0, 8));
        std::vector<LinearTerm> row;
        for (auto v : x[w])
            row.push_back({v, 1});
        m.addEquality(row, 8); // T(w) = 8 chunks
    }
    for (int l = 0; l < layers; ++l) {
        std::vector<LinearTerm> col;
        for (int w = 0; w < weights; ++w)
            col.push_back({x[w][l], 1});
        m.addLessOrEqual(col, 40); // C_l
    }
    std::vector<LinearTerm> obj;
    for (int w = 0; w < weights; ++w) {
        for (int l = 0; l < layers; ++l)
            obj.push_back({x[w][l], layers - l}); // prefer late loading
    }
    m.minimize(obj);

    SolverParams params;
    params.timeLimitSeconds = 2.0;
    auto r = CpSolver(params).solve(m);
    ASSERT_TRUE(r.feasible());
    // 240 chunks over layers of capacity 40: the optimal late packing
    // fills layers 7..2, costing 40 * (1+2+3+4+5+6) = 840.
    EXPECT_LE(r.objective, 840 + 120); // within 1 layer-shift of optimal
}

} // namespace
} // namespace flashmem::solver
