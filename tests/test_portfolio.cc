/**
 * @file
 * Tests for the inside-one-window parallelism layer: symmetry
 * detection/breaking (solver/symmetry.hh) and the deterministic
 * portfolio race (solver/portfolio.hh), plus their integration into
 * LC-OPG planning (byte-identical plans for any pool size, winning
 * configuration ids in the window summaries).
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/lc_opg.hh"
#include "graph/builder.hh"
#include "solver/model.hh"
#include "solver/portfolio.hh"
#include "solver/solver.hh"
#include "solver/symmetry.hh"

namespace flashmem::solver {
namespace {

// ------------------------------------------------------------ fixtures

/** N single-variable blocks over [lo, hi] with unit objective. */
struct SingleVarModel
{
    CpModel model;
    std::vector<VarBlock> blocks;
};

SingleVarModel
singleVarBlocks(const std::vector<std::pair<std::int64_t, std::int64_t>>
                    &domains,
                const std::vector<std::int64_t> &obj_coefs)
{
    SingleVarModel out;
    std::vector<LinearTerm> obj;
    for (std::size_t i = 0; i < domains.size(); ++i) {
        auto v = out.model.newIntVar(domains[i].first,
                                     domains[i].second);
        out.model.addLessOrEqual({{v, 1}}, domains[i].second);
        obj.push_back({v, obj_coefs[i]});
        out.blocks.push_back({{v}});
    }
    out.model.minimize(obj);
    return out;
}

/**
 * OPG-window-shaped instance with @p weights fully interchangeable
 * weights: identical chunk count, consumer layer and candidate set,
 * under one shared per-layer capacity. The canonical symmetric
 * instance — without breaking, every permutation of the weight blocks
 * spans its own identical subtree.
 */
struct WindowModel
{
    CpModel model;
    std::vector<VarBlock> blocks;
};

WindowModel
symmetricWindow(int weights, int layers, std::int64_t tw,
                std::int64_t cap)
{
    WindowModel out;
    CpModel &m = out.model;
    std::vector<VarId> y(weights), z(weights);
    std::vector<std::vector<VarId>> x(weights);
    std::vector<LinearTerm> obj;
    for (int w = 0; w < weights; ++w) {
        std::vector<LinearTerm> row;
        y[w] = m.newIntVar(0, tw);
        row.push_back({y[w], 1});
        for (int l = 0; l < layers; ++l) {
            x[w].push_back(m.newIntVar(0, tw));
            row.push_back({x[w].back(), 1});
        }
        m.addEquality(row, tw);
        z[w] = m.newIntVar(0, layers);
        for (int l = 0; l < layers; ++l)
            m.addImplicationGeLe(x[w][l], 1, z[w], l);
        obj.push_back({y[w], 90});
        for (int l = 0; l < layers; ++l)
            obj.push_back({x[w][l], layers - l - 1});
        obj.push_back({z[w], -10});
        VarBlock b;
        b.vars.push_back(y[w]);
        b.vars.insert(b.vars.end(), x[w].begin(), x[w].end());
        b.vars.push_back(z[w]);
        out.blocks.push_back(std::move(b));
    }
    for (int l = 0; l < layers; ++l) {
        std::vector<LinearTerm> col;
        for (int w = 0; w < weights; ++w)
            col.push_back({x[w][l], 1});
        m.addLessOrEqual(col, cap);
    }
    m.minimize(obj);
    return out;
}

// ------------------------------------------------- symmetry detection

TEST(SymmetryTest, AllEqualBlocksFormOneGroup)
{
    auto f = singleVarBlocks({{0, 5}, {0, 5}, {0, 5}}, {1, 1, 1});
    EXPECT_TRUE(
        blocksInterchangeable(f.model, f.blocks[0], f.blocks[1]));
    auto groups = groupInterchangeableBlocks(f.model, f.blocks);
    ASSERT_EQ(groups.size(), 1u);
    EXPECT_EQ(groups[0], (std::vector<int>{0, 1, 2}));
}

TEST(SymmetryTest, DistinctDomainsFormTwoGroups)
{
    auto f = singleVarBlocks({{0, 5}, {0, 5}, {0, 7}, {0, 7}},
                             {1, 1, 1, 1});
    auto groups = groupInterchangeableBlocks(f.model, f.blocks);
    ASSERT_EQ(groups.size(), 2u);
    EXPECT_EQ(groups[0], (std::vector<int>{0, 1}));
    EXPECT_EQ(groups[1], (std::vector<int>{2, 3}));
}

TEST(SymmetryTest, DistinctObjectiveCoefsAreNotSymmetric)
{
    auto f = singleVarBlocks({{0, 5}, {0, 5}}, {1, 2});
    EXPECT_FALSE(
        blocksInterchangeable(f.model, f.blocks[0], f.blocks[1]));
    EXPECT_TRUE(groupInterchangeableBlocks(f.model, f.blocks).empty());
}

TEST(SymmetryTest, OverlappingOrMismatchedBlocksRejected)
{
    auto f = singleVarBlocks({{0, 5}, {0, 5}}, {1, 1});
    VarBlock overlap{{f.blocks[0].vars[0]}};
    EXPECT_FALSE(blocksInterchangeable(f.model, f.blocks[0], overlap));
    VarBlock longer{{f.blocks[0].vars[0], f.blocks[1].vars[0]}};
    EXPECT_FALSE(blocksInterchangeable(f.model, longer, f.blocks[1]));
}

TEST(SymmetryTest, WindowBlocksDetected)
{
    auto w = symmetricWindow(4, 3, 2, 3);
    auto groups = groupInterchangeableBlocks(w.model, w.blocks);
    ASSERT_EQ(groups.size(), 1u);
    EXPECT_EQ(groups[0], (std::vector<int>{0, 1, 2, 3}));
}

// -------------------------------------------------- symmetry breaking

TEST(SymmetryTest, BreakingKeepsObjectiveCutsConflicts)
{
    // Same symmetric instance solved to exhaustion with and without
    // the lex chain: the proven optimum must match exactly, and the
    // chain must strictly reduce the conflict count (it prunes the
    // permuted duplicate subtrees, nothing else).
    SolverParams sp;
    sp.timeLimitSeconds = 60.0;

    auto plain = symmetricWindow(5, 3, 2, 3);
    auto r_plain = CpSolver(sp).solve(plain.model);

    auto broken = symmetricWindow(5, 3, 2, 3);
    auto groups = groupInterchangeableBlocks(broken.model,
                                             broken.blocks);
    ASSERT_FALSE(groups.empty());
    int rows = addSymmetryBreaking(broken.model, broken.blocks, groups);
    EXPECT_EQ(rows, 4); // chain of 5 blocks -> 4 ordering rows
    auto r_broken = CpSolver(sp).solve(broken.model);

    ASSERT_EQ(r_plain.status, SolveStatus::Optimal);
    ASSERT_EQ(r_broken.status, SolveStatus::Optimal);
    EXPECT_EQ(r_broken.objective, r_plain.objective);
    EXPECT_LT(r_broken.backtracks, r_plain.backtracks);
}

TEST(SymmetryTest, CanonicalizedHintSatisfiesLexRows)
{
    auto f = singleVarBlocks({{0, 5}, {0, 5}}, {1, 1});
    auto groups = groupInterchangeableBlocks(f.model, f.blocks);
    ASSERT_EQ(groups.size(), 1u);
    addSymmetryBreaking(f.model, f.blocks, groups);

    // Out of leader order: violates the fresh lex row...
    std::vector<std::int64_t> hint{3, 1};
    EXPECT_FALSE(f.model.satisfiedBy(hint));
    // ...until canonicalization sorts the blocks by leader value.
    canonicalizeHint(f.model, f.blocks, groups, hint);
    EXPECT_EQ(hint, (std::vector<std::int64_t>{1, 3}));
    EXPECT_TRUE(f.model.satisfiedBy(hint));
}

// -------------------------------------------------- portfolio configs

TEST(PortfolioTest, ConfigZeroIsTheBaseVerbatim)
{
    SolverParams base;
    base.restartConflictBase = 128;
    auto p0 = portfolioConfig(base, 0, nullptr);
    EXPECT_EQ(p0.orderSeed, 0u);
    EXPECT_FALSE(p0.invertValueOrder);
    EXPECT_EQ(p0.restartConflictBase, 128u);
}

TEST(PortfolioTest, ConfigsAreDiverseAndDeterministic)
{
    SolverParams base;
    base.restartConflictBase = 128;
    auto p1 = portfolioConfig(base, 1, nullptr);
    auto p2 = portfolioConfig(base, 2, nullptr);
    auto p3 = portfolioConfig(base, 3, nullptr);
    EXPECT_NE(p1.orderSeed, 0u);
    EXPECT_NE(p1.orderSeed, p2.orderSeed);
    EXPECT_TRUE(p1.invertValueOrder);
    EXPECT_FALSE(p2.invertValueOrder);
    EXPECT_EQ(p2.restartConflictBase, 256u);
    // Config 3 is the dedicated exhaustion-proof attempt.
    EXPECT_EQ(p3.restartConflictBase, 0u);
    // Same index, same derivation — twice.
    auto again = portfolioConfig(base, 2, nullptr);
    EXPECT_EQ(again.orderSeed, p2.orderSeed);
}

TEST(PortfolioTest, BoardProtocol)
{
    PortfolioBoard board;
    std::int64_t obj = 0;
    EXPECT_FALSE(board.provenObjective(&obj));
    EXPECT_FALSE(board.cancelled(0));
    EXPECT_FALSE(board.cancelled(3));

    board.publishProven(2, 41);
    ASSERT_TRUE(board.provenObjective(&obj));
    EXPECT_EQ(obj, 41);
    // Lower-indexed configs keep running; higher-indexed ones stop.
    EXPECT_FALSE(board.cancelled(0));
    EXPECT_FALSE(board.cancelled(2));
    EXPECT_TRUE(board.cancelled(3));

    // A lower config achieving B* takes over the cutoff.
    board.noteAchieved(1);
    EXPECT_FALSE(board.cancelled(1));
    EXPECT_TRUE(board.cancelled(2));
}

// ----------------------------------------------------- portfolio race

TEST(PortfolioTest, SingleConfigMatchesPlainSolver)
{
    auto w = symmetricWindow(4, 3, 2, 3);
    SolverParams sp;
    auto plain = CpSolver(sp).solve(w.model);
    auto pr = solvePortfolio(w.model, sp, 1, nullptr, 4);
    EXPECT_EQ(pr.winningConfig, 0);
    EXPECT_EQ(pr.result.status, plain.status);
    EXPECT_EQ(pr.result.objective, plain.objective);
    EXPECT_EQ(pr.result.values, plain.values);
    EXPECT_EQ(pr.result.decisions, plain.decisions);
}

TEST(PortfolioTest, RaceIsThreadCountInvariant)
{
    auto w = symmetricWindow(5, 3, 2, 3);
    SolverParams sp;
    sp.restartConflictBase = 64;

    PortfolioResult ref;
    bool have_ref = false;
    for (int threads : {1, 2, 8}) {
        auto pr = solvePortfolio(w.model, sp, 4, nullptr, threads);
        ASSERT_TRUE(pr.result.feasible()) << "threads=" << threads;
        if (!have_ref) {
            ref = pr;
            have_ref = true;
            continue;
        }
        EXPECT_EQ(pr.winningConfig, ref.winningConfig)
            << "threads=" << threads;
        EXPECT_EQ(pr.result.status, ref.result.status)
            << "threads=" << threads;
        EXPECT_EQ(pr.result.objective, ref.result.objective)
            << "threads=" << threads;
        EXPECT_EQ(pr.result.values, ref.result.values)
            << "threads=" << threads;
        // Improvement snapshots are part of the deterministic
        // contract (they feed the window summaries and traces).
        EXPECT_EQ(pr.result.improveDecisions,
                  ref.result.improveDecisions)
            << "threads=" << threads;
        EXPECT_EQ(pr.result.improveBacktracks,
                  ref.result.improveBacktracks)
            << "threads=" << threads;
    }
}

TEST(PortfolioTest, CancellationCutsLosersWithoutChangingResult)
{
    // Sequential race: config 0 proves the optimum first, so every
    // later configuration must be cut off by the board — and the
    // merged result must still be exactly config 0's proof.
    auto w = symmetricWindow(5, 3, 2, 3);
    SolverParams sp;
    auto plain = CpSolver(sp).solve(w.model);
    ASSERT_EQ(plain.status, SolveStatus::Optimal);

    auto pr = solvePortfolio(w.model, sp, 4, nullptr, 1);
    EXPECT_EQ(pr.result.status, SolveStatus::Optimal);
    EXPECT_EQ(pr.winningConfig, 0);
    EXPECT_EQ(pr.result.objective, plain.objective);
    EXPECT_EQ(pr.result.values, plain.values);

    ASSERT_EQ(pr.outcomes.size(), 4u);
    EXPECT_FALSE(pr.outcomes[0].result.cancelled);
    for (std::size_t k = 1; k < pr.outcomes.size(); ++k) {
        const auto &o = pr.outcomes[k].result;
        EXPECT_TRUE(o.cancelled) << "config " << k;
        // The loser was cut off long before replaying the winner's
        // whole search.
        EXPECT_LT(o.decisions, pr.outcomes[0].result.decisions)
            << "config " << k;
    }
}

} // namespace
} // namespace flashmem::solver

// ------------------------------------------------ LC-OPG integration

namespace flashmem::core {
namespace {

using gpusim::DeviceProfile;
using gpusim::KernelModel;

graph::Graph
smallGraph(int blocks = 3, std::int64_t d = 256,
           std::int64_t tokens = 64)
{
    graph::GraphBuilder b("portfolio-toy", Precision::FP16);
    auto x = b.input({tokens, d});
    for (int i = 0; i < blocks; ++i) {
        std::string p = "blk" + std::to_string(i);
        auto n = b.layerNorm(x, p + ".ln");
        auto h = b.matmul(n, 4 * d, p + ".fc1");
        h = b.activation(h, graph::OpKind::GeLU, p + ".act");
        h = b.matmul(h, d, p + ".fc2");
        x = b.add(x, h, p + ".res");
    }
    return b.build();
}

TEST(PortfolioTest, LcOpgPlansByteIdenticalAcrossPoolSizes)
{
    auto g = smallGraph(3);
    KernelModel km(DeviceProfile::onePlus12());
    profiler::AnalyticCapacityProvider cap(km);

    std::string ref;
    std::uint64_t ref_decisions = 0;
    std::vector<int> ref_winners;
    for (int threads : {1, 2, 8}) {
        PlanMemo::global().clear();
        OpgParams params;
        params.parallel.threads = threads;
        params.portfolioConfigs = 3;
        LcOpgPlanner planner(g, cap, km, params);
        PlanStats stats;
        auto s = planner.plan(&stats).serialize();

        std::vector<int> winners;
        for (const auto &ws : stats.windowSummaries) {
            winners.push_back(ws.winningConfig);
            if (!ws.usedGreedy) {
                EXPECT_EQ(ws.configConflicts.size(), 3u);
            }
        }
        if (ref.empty()) {
            ref = s;
            ref_decisions = stats.solverDecisions;
            ref_winners = winners;
            continue;
        }
        EXPECT_EQ(s, ref) << "threads=" << threads;
        EXPECT_EQ(stats.solverDecisions, ref_decisions)
            << "threads=" << threads;
        EXPECT_EQ(winners, ref_winners) << "threads=" << threads;
    }
    PlanMemo::global().clear();
}

TEST(PortfolioTest, LcOpgPortfolioOffMatchesHistoricalStats)
{
    // portfolioConfigs == 1 must reproduce the pre-portfolio planner
    // exactly: same plan bytes AND same raw solver counters (the
    // portfolio path switches the summaries to improvement snapshots,
    // the single-config path must not).
    auto g = smallGraph(3);
    KernelModel km(DeviceProfile::onePlus12());
    profiler::AnalyticCapacityProvider cap(km);

    PlanMemo::global().clear();
    OpgParams one;
    one.portfolioConfigs = 1;
    LcOpgPlanner p1(g, cap, km, one);
    PlanStats s1;
    auto plan1 = p1.plan(&s1).serialize();

    PlanMemo::global().clear();
    OpgParams dflt;
    LcOpgPlanner p2(g, cap, km, dflt);
    PlanStats s2;
    auto plan2 = p2.plan(&s2).serialize();
    PlanMemo::global().clear();

    EXPECT_EQ(plan1, plan2);
    EXPECT_EQ(s1.solverDecisions, s2.solverDecisions);
    EXPECT_EQ(s1.solverConflicts, s2.solverConflicts);
    for (const auto &ws : s1.windowSummaries)
        EXPECT_EQ(ws.winningConfig, 0);
}

TEST(PortfolioTest, LcOpgSymmetryBreakingPreservesPlans)
{
    // On transformer graphs the symmetry pass fires on groups of
    // equal-size weights whose preload is pinned by C0 (empty
    // candidate sets), so the lex rows order already-fixed variables:
    // detection must report rows, and the plan bytes must not move.
    auto g = smallGraph(2);
    KernelModel km(DeviceProfile::onePlus12());
    profiler::AnalyticCapacityProvider cap(km);

    PlanMemo::global().clear();
    OpgParams on; // symmetryBreaking defaults to true
    LcOpgPlanner p1(g, cap, km, on);
    PlanStats s_on;
    auto plan_on = p1.plan(&s_on).serialize();

    PlanMemo::global().clear();
    OpgParams off;
    off.symmetryBreaking = false;
    LcOpgPlanner p2(g, cap, km, off);
    PlanStats s_off;
    auto plan_off = p2.plan(&s_off).serialize();
    PlanMemo::global().clear();

    EXPECT_GT(s_on.symmetryRows, 0);
    EXPECT_EQ(s_off.symmetryRows, 0);
    EXPECT_EQ(plan_on, plan_off);
}

} // namespace
} // namespace flashmem::core
